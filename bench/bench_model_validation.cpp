// Section 5 performance-model validation.
//
// Reproduces the analytical claims:
//   * Eq. 5: Dif = M*N*Tsmem - (M-1)*Tshfl >> 0 for all M,N >= 2 — printed
//     for the Fig. 4 filter range on both GPUs;
//   * §5.3: halo ratio HRrc and its closed-form bound; AvgDif >> 0;
//   * model-vs-simulator: the per-output latency advantage predicted by
//     Eq. 5 must agree in *sign and trend* with the simulated SSAM vs
//     shared-memory-convolution runtimes (the crossover logic of Fig. 4).
#include <cmath>
#include <iostream>

#include "baselines/conv2d_smem.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/conv2d.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil_shape.hpp"
#include "perfmodel/latency_model.hpp"

int main() {
  using namespace ssam;
  bench::print_simulation_note();
  bench::ShapeChecks checks;

  for (const sim::ArchSpec* arch : {&sim::tesla_p100(), &sim::tesla_v100()}) {
    print_banner("Section 5 model (" + arch->name + ")");
    const perf::MicroLatencies lat = perf::from_arch(*arch);

    // The paper evaluates AvgDif with its quoted coalesced-gmem figure of
    // "200~400 cycles" [42]; the inequality is tight at small filters, so we
    // tabulate both ends of that range.
    perf::MicroLatencies lat_lo = lat;
    lat_lo.t_gmem_read = 200;
    perf::MicroLatencies lat_hi = lat;
    lat_hi.t_gmem_read = 400;

    ConsoleTable t({"M=N", "Lsmem (cy)", "Lreg (cy)", "Dif (Eq.5)", "HRrc (P=4)",
                    "HR bound", "AvgDif (gmem=200)", "AvgDif (gmem=400)"});
    bool dif_positive = true;
    bool hr_bounded = true;
    bool avgdif_positive_3up = true;
    for (int f = 2; f <= 20; ++f) {
      const double lsmem = perf::latency_smem_method(f, f, lat);
      const double lreg = perf::latency_ssam_method(f, f, lat);
      const double dif = perf::dif_smem_reg(f, f, lat);
      const double hr = perf::halo_ratio_rc(f, f, 4);
      const double hrb = perf::halo_ratio_bound(f, f, 4);
      const double avg_lo = perf::avg_dif_lower_bound(f, f, 4, lat_lo);
      const double avg_hi = perf::avg_dif_lower_bound(f, f, 4, lat_hi);
      dif_positive &= dif > 0;
      hr_bounded &= hr < hrb;
      if (f >= 3) avgdif_positive_3up &= avg_lo > 0;
      t.add_row({std::to_string(f), ConsoleTable::num(lsmem, 0),
                 ConsoleTable::num(lreg, 0), ConsoleTable::num(dif, 0),
                 ConsoleTable::num(hr, 3), ConsoleTable::num(hrb, 3),
                 ConsoleTable::num(avg_lo, 0), ConsoleTable::num(avg_hi, 0)});
    }
    std::cout << t.str();
    std::cout << "note: the paper's AvgDif >> 0 conclusion assumes the low end of its\n"
                 "200~400-cycle gmem figure; at the high end the bound goes negative\n"
                 "for small filters — consistent with SSAM's thin 2x2 margin in Fig. 4.\n";
    checks.check(arch->name + ": Dif >> 0 for all M,N in [2,20] (Eq. 5)", dif_positive);
    checks.check(arch->name + ": HRrc < (S*N+C*M)/(S*C) bound (Section 5.3)", hr_bounded);
    checks.check(arch->name + ": AvgDif > 0 for M,N in [3,20] at gmem=200 (Section 5.3)",
                 avgdif_positive_3up);

    // Model vs simulator. Eq. 5 predicts the per-element advantage of the
    // register cache; Section 5.3's halo ratio HRrc erodes it as the filter
    // widens (valid lanes shrink to 33-M). We print both terms next to the
    // simulated smem-conv/SSAM runtime ratio: the measured advantage must be
    // > 1 across ArrayFire's supported range, and the erosion at large M
    // must match the HR-corrected model direction.
    Grid2D<float> in(2048, 2048), out(2048, 2048);
    std::vector<float> w(16 * 16, 0.01f);
    ConsoleTable v({"M=N", "Eq.5 Lsmem/Lreg", "x halo correction", "simulated smem/SSAM"});
    bool ssam_always_wins = true;
    for (int f : {3, 5, 9, 13}) {
      std::span<const float> wf(w.data(), static_cast<std::size_t>(f) * f);
      auto ssam = core::conv2d_ssam<float>(*arch, in.cview(), wf, f, f, out.view(), {},
                                           sim::ExecMode::kTiming, {32, 4});
      auto smem = base::conv2d_smem<float>(*arch, in.cview(), wf, f, f, out.view(), {},
                                           sim::ExecMode::kTiming, {32, 4});
      const double ms_ssam = sim::estimate_runtime(*arch, ssam).total_ms;
      const double ms_smem = sim::estimate_runtime(*arch, smem).total_ms;
      const double model = perf::latency_smem_method(f, f, lat) /
                           perf::latency_ssam_method(f, f, lat);
      const double halo_corrected =
          model * (static_cast<double>(sim::kWarpSize) - f + 1) / sim::kWarpSize;
      const double measured = ms_smem / ms_ssam;
      v.add_row({std::to_string(f), ConsoleTable::num(model, 2),
                 ConsoleTable::num(halo_corrected, 2), ConsoleTable::num(measured, 2)});
      if (measured <= 1.0) ssam_always_wins = false;
    }
    std::cout << v.str();
    checks.check(arch->name + ": simulated advantage > 1 across ArrayFire's range",
                 ssam_always_wins);

    // Units audit: the cost attributed to a sparse shape must track the taps
    // the kernel executes, not its bounding box. A star-R stencil and the
    // dense box over the same footprint share a bounding box, so Eq. 4 as
    // written prices them identically (ratio 1.0) — the 2-3x overcharge
    // this pass caught leaking into the server's deadline-shed EWMA. The
    // simulator executes the actual taps but still pays bbox-shaped memory
    // traffic (the register cache loads every row in the window), so the
    // true ratio must land INSIDE the [sparse-compute, bbox] bracket: at or
    // above latency_ssam_taps' compute-only floor, and strictly below the
    // bbox charge once sparsity matters (R >= 2).
    ConsoleTable u({"star R", "taps/bbox", "sparse model ratio", "bbox model ratio",
                    "simulated ratio"});
    bool bracketed = true;
    Grid2D<float> sout(1024, 1024);
    Grid2D<float> sin(1024, 1024);
    fill_random(sin, 42);
    for (int r : {1, 2, 4}) {
      const auto star = core::star2d<float>(r);
      const auto box = core::box2d<float>(2 * r + 1, 2 * r + 1);
      const int bbox_m = 2 * r + 1;
      auto st_star = core::stencil2d_ssam<float>(*arch, sin.cview(), star, sout.view(),
                                                 {}, sim::ExecMode::kTiming, {32, 4});
      auto st_box = core::stencil2d_ssam<float>(*arch, sin.cview(), box, sout.view(),
                                                {}, sim::ExecMode::kTiming, {32, 4});
      const double ms_star = sim::estimate_runtime(*arch, st_star).total_ms;
      const double ms_box = sim::estimate_runtime(*arch, st_box).total_ms;
      const double simulated = ms_star / ms_box;
      const double sparse_ratio =
          perf::latency_ssam_taps(4 * r + 1, bbox_m, lat) /
          perf::latency_ssam_taps(bbox_m * bbox_m, bbox_m, lat);
      const double bbox_ratio = 1.0;  // Eq. 4 cannot tell the shapes apart
      u.add_row({std::to_string(r),
                 std::to_string(4 * r + 1) + "/" + std::to_string(bbox_m * bbox_m),
                 ConsoleTable::num(sparse_ratio, 3), ConsoleTable::num(bbox_ratio, 3),
                 ConsoleTable::num(simulated, 3)});
      bracketed &= simulated >= sparse_ratio - 1e-9;
      if (r >= 2) bracketed &= simulated < bbox_ratio - 0.05;
    }
    std::cout << u.str();
    checks.check(arch->name + ": star cost sits in the [sparse-compute, bbox] "
                              "bracket, beating the bbox charge for R >= 2",
                 bracketed);
  }

  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
