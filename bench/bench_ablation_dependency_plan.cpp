// Ablation: the dependency schedule D (Section 5.4).
//
// "Decreasing the transfer of partial sums in the horizontal direction is
// essential" — we compare the minimal-shift schedule build_plan() derives
// against a naive dense schedule that shifts through the full column range
// in every z-pass, on the 3D star stencils where the difference is largest.
#include <iostream>

#include "bench_common.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil_suite.hpp"
#include "perfmodel/latency_model.hpp"

int main() {
  using namespace ssam;
  bench::print_simulation_note();
  print_banner("Ablation: dependency graph D — minimal vs dense shift schedule");
  bench::ShapeChecks checks;

  Grid3D<float> in(256, 256, 256), out(256, 256, 256);
  const auto& arch = sim::tesla_v100();
  const perf::MicroLatencies lat = perf::from_arch(arch);

  ConsoleTable t({"stencil", "shifts (min D)", "shifts (dense D)", "model cost ratio",
                  "ms (min D)", "ms (dense D)", "speedup"});
  for (const char* name : {"3d7pt", "3d13pt", "poisson", "3d27pt"}) {
    const auto shape = core::suite_stencil<float>(name);
    const auto plan_min = core::build_plan(shape.taps, /*dense=*/false);
    const auto plan_dense = core::build_plan(shape.taps, /*dense=*/true);

    auto s_min = core::stencil3d_ssam<float>(arch, in.cview(), plan_min, out.view(), {},
                                             sim::ExecMode::kTiming, {32, 4});
    auto s_dense = core::stencil3d_ssam<float>(arch, in.cview(), plan_dense, out.view(),
                                               {}, sim::ExecMode::kTiming, {32, 4});
    const double ms_min = sim::estimate_runtime(arch, s_min).total_ms;
    const double ms_dense = sim::estimate_runtime(arch, s_dense).total_ms;
    const double model_ratio =
        perf::plan_shift_cost(plan_dense.horizontal_shifts(), lat) /
        std::max(1.0, perf::plan_shift_cost(plan_min.horizontal_shifts(), lat));
    t.add_row({name, std::to_string(plan_min.horizontal_shifts()),
               std::to_string(plan_dense.horizontal_shifts()),
               ConsoleTable::num(model_ratio, 2), ConsoleTable::num(ms_min, 2),
               ConsoleTable::num(ms_dense, 2), ConsoleTable::num(ms_dense / ms_min, 2)});
    checks.check(std::string(name) + ": minimal D never slower than dense D",
                 ms_min <= ms_dense * 1.02);
    checks.check(std::string(name) + ": minimal D has <= dense D shifts",
                 plan_min.horizontal_shifts() <= plan_dense.horizontal_shifts());
  }
  std::cout << t.str();
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
