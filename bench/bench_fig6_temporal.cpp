// Figure 6: temporal/spatial blocking comparison (GCells/s per time step).
//
// Benchmarks 2d5pt, 2d9pt, 3d7pt, 3d13pt, poisson on P100/V100 x FP32/FP64.
//   * StencilGen-like — overlapped temporal blocking in shared memory
//     (best fused depth t from a small tuning set, as StencilGen autotunes);
//   * SSAM — in-register temporal blocking for 2D (Section 6.4: SSAM
//     "enables temporal blocking without much change"); plain SSAM for 3D
//     (register pressure limits deep 3D fusion — the caveat the paper
//     itself notes for some cases);
//   * Diffusion — our 2.5D z-march implementation for 3d7pt, next to the
//     paper-quoted numbers (92.7/162.4 SP, 30.6/46.9 DP GCells/s);
//   * Bricks — paper-quoted constants only (library not public; the paper
//     could not run it on V100 either).
#include <iostream>
#include <map>

#include "baselines/stencil_temporal.hpp"
#include "baselines/stencil_tiled.hpp"
#include "bench_common.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil3d_temporal.hpp"
#include "core/stencil_suite.hpp"
#include "paperdata/paper_values.hpp"

namespace {

using namespace ssam;

const std::vector<std::string> kFig6Stencils = {"2d5pt", "2d9pt", "3d7pt", "3d13pt",
                                                "poisson"};

template <typename T>
double best_stencilgen(const sim::ArchSpec& arch, const core::StencilShape<T>& shape,
                       Grid2D<T>& in2, Grid2D<T>& out2, Grid3D<T>& in3, Grid3D<T>& out3) {
  const sim::SampleSpec sample{32, 4};
  double best = 0;
  if (shape.dims == 2) {
    const double cells = static_cast<double>(in2.width()) * in2.height();
    for (int t : {1, 2, 4, 6}) {
      if (t * shape.order * 2 >= 8) continue;  // halo must fit the 8-row tile
      auto st = base::stencil2d_temporal_smem<T>(arch, in2.cview(), shape, out2.view(),
                                                 base::TemporalOptions{t},
                                                 sim::ExecMode::kTiming, sample);
      best = std::max(best, bench::measure(arch, st, cells, t).gcells);
    }
  } else {
    const double cells = static_cast<double>(in3.nx()) * in3.ny() * in3.nz();
    for (int t : {1, 2}) {
      if (t * shape.order > 2) continue;  // 3D tile is 4 deep
      auto st = base::stencil3d_temporal_smem<T>(arch, in3.cview(), shape, out3.view(),
                                                 base::TemporalOptions{t},
                                                 sim::ExecMode::kTiming, sample);
      best = std::max(best, bench::measure(arch, st, cells, t).gcells);
    }
  }
  return best;
}

template <typename T>
double best_ssam(const sim::ArchSpec& arch, const core::StencilShape<T>& shape,
                 Grid2D<T>& in2, Grid2D<T>& out2, Grid3D<T>& in3, Grid3D<T>& out3) {
  const sim::SampleSpec sample{32, 4};
  double best = 0;
  if (shape.dims == 2) {
    const double cells = static_cast<double>(in2.width()) * in2.height();
    const int span = 2 * shape.order;
    for (int t : {1, 2, 3, 4, 6}) {
      if (sim::kWarpSize - t * span < 16) continue;  // keep >= half warp valid
      core::TemporalSsamOptions opt;
      opt.t = t;
      auto st = core::stencil2d_ssam_temporal<T>(arch, in2.cview(), shape, out2.view(),
                                                 opt, sim::ExecMode::kTiming, sample);
      best = std::max(best, bench::measure(arch, st, cells, t).gcells);
    }
  } else {
    const double cells = static_cast<double>(in3.nx()) * in3.ny() * in3.nz();
    auto st = core::stencil3d_ssam<T>(arch, in3.cview(), shape, out3.view(), {},
                                      sim::ExecMode::kTiming, sample);
    best = bench::measure(arch, st, cells).gcells;
    // In-register 3D temporal blocking (register pressure limits the depth).
    for (int t : {2, 3}) {
      core::Temporal3DOptions opt;
      opt.t = t;
      opt.warps = 2 * t * shape.order + 6;
      if (opt.warps * sim::kWarpSize > 1024) continue;  // CUDA block limit
      if (sim::kWarpSize - t * 2 * shape.order < 16) continue;
      try {
        auto tt = core::stencil3d_ssam_temporal<T>(arch, in3.cview(), shape, out3.view(),
                                                   opt, sim::ExecMode::kTiming, sample);
        best = std::max(best, bench::measure(arch, tt, cells, t).gcells);
      } catch (const ResourceError&) {
        // configuration exceeds this GPU's shared memory — skip, like a
        // launch-failure fallback in an autotuner
      }
    }
  }
  return best;
}

template <typename T>
void run_panel(const sim::ArchSpec& arch, const char* tag, bench::ShapeChecks& checks) {
  const bool fp32 = sizeof(T) == 4;
  print_banner(std::string("Figure 6") + tag + " (" + arch.name + ", " +
               (fp32 ? "single" : "double") + " precision): GCells/s per step");

  Grid2D<T> in2(core::kSuiteDomain2D, core::kSuiteDomain2D);
  Grid2D<T> out2(core::kSuiteDomain2D, core::kSuiteDomain2D);
  Grid3D<T> in3(core::kSuiteDomain3D, core::kSuiteDomain3D, core::kSuiteDomain3D);
  Grid3D<T> out3(core::kSuiteDomain3D, core::kSuiteDomain3D, core::kSuiteDomain3D);

  ConsoleTable t({"benchmark", "StencilGen", "SSAM", "Diffusion (ours)",
                  "Diffusion (paper)", "Bricks (paper)"});
  int ssam_wins = 0;
  const sim::SampleSpec sample{32, 4};
  for (const auto& name : kFig6Stencils) {
    const auto shape = core::suite_stencil<T>(name);
    const double sg = best_stencilgen<T>(arch, shape, in2, out2, in3, out3);
    const double sm = best_ssam<T>(arch, shape, in2, out2, in3, out3);
    if (sm >= sg) ++ssam_wins;

    std::string diff_ours = "-", diff_paper = "-", bricks = "-";
    if (name == "3d7pt") {
      auto zm = base::stencil3d_zmarch<T>(arch, in3.cview(), shape, out3.view(),
                                          sim::ExecMode::kTiming, sample);
      const double cells = static_cast<double>(in3.nx()) * in3.ny() * in3.nz();
      diff_ours = ConsoleTable::num(bench::measure(arch, zm, cells).gcells, 1);
      for (const auto& q : paper::quoted_temporal_results()) {
        if (q.system == std::string("Diffusion") && q.gpu == arch.name &&
            q.single_precision == fp32) {
          diff_paper = ConsoleTable::num(q.gcells_per_s, 1);
        }
      }
    }
    for (const auto& q : paper::quoted_temporal_results()) {
      if (q.system == std::string("Bricks") && q.gpu == arch.name &&
          q.single_precision == fp32) {
        bricks = ConsoleTable::num(q.gcells_per_s, 2) + " (overall)";
      }
    }
    t.add_row({name, ConsoleTable::num(sg, 1), ConsoleTable::num(sm, 1), diff_ours,
               diff_paper, bricks});
  }
  std::cout << t.str();
  std::cout << "SSAM wins " << ssam_wins << "/" << kFig6Stencils.size() << " vs StencilGen\n";
  checks.check(std::string(arch.name) + (fp32 ? " single" : " double") +
                   ": SSAM beats StencilGen on the majority (Section 6.4)",
               ssam_wins >= 3);
}

}  // namespace

int main() {
  using namespace ssam;
  bench::print_simulation_note();
  bench::ShapeChecks checks;
  run_panel<float>(sim::tesla_p100(), "a", checks);
  run_panel<double>(sim::tesla_p100(), "b", checks);
  run_panel<float>(sim::tesla_v100(), "c", checks);
  run_panel<double>(sim::tesla_v100(), "d", checks);
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
