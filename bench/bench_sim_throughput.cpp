// Host-side functional-mode simulator throughput: blocks/sec and lane-ops/sec
// per kernel, written to BENCH_sim_throughput.json so the speedup is tracked
// across PRs.
//
// Simulation throughput is the binding constraint on how large a grid, how
// many filter shapes, and how many architectures the harness can sweep, so
// this bench measures the *simulator's own* speed (not the simulated GPU's).
// For conv2d and stencil2d it also replays the kernels on a faithful replica
// of the pre-specialization execution path — runtime `timing` flag, scalar
// 32-lane loops, per-block BlockContext reconstruction (48 KB zeroed shared
// arena + warp vector per block), heap-allocated accumulators — and reports
// the speedup of the compile-time-specialized SIMD path over it.
// It also runs a multi-kernel *pipeline* scenario (blur + Sobel pair over a
// batch of images) serially and as overlapping streams on the launch queue,
// reporting end-to-end pipeline throughput — the number the async
// execution-service work is accountable to.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/conv2d.hpp"
#include "core/gemm.hpp"
#include "core/scan.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/stream.hpp"

namespace {

using namespace ssam;

// ===========================================================================
// Legacy execution path: a faithful replica of the seed simulator's
// functional mode (pre compile-time specialization), kept here so the bench
// can measure the interpretive overhead the refactor removed.
// ===========================================================================

namespace legacy {

using sim::ArchSpec;
using sim::Counters;
using sim::kFullMask;
using sim::kWarpSize;
using sim::MemorySystem;
using sim::Scoreboard;
using sim::Smem;
using sim::SmemAllocator;

/// Seed register types, verbatim: value-initializing members, so every
/// constructed register zeroed its 32 lanes — part of the interpretive
/// overhead the compile-time-specialized path removed.
template <typename T>
struct Vec {
  std::array<T, kWarpSize> lane{};
  [[nodiscard]] T& operator[](int i) { return lane[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const T& operator[](int i) const { return lane[static_cast<std::size_t>(i)]; }
};

template <typename T>
struct Reg {
  Vec<T> v{};
  Cycle ready = 0;
  [[nodiscard]] T& operator[](int i) { return v[i]; }
  [[nodiscard]] const T& operator[](int i) const { return v[i]; }
};

using Pred = Reg<int>;

class WarpContext {
 public:
  WarpContext(const ArchSpec& arch, MemorySystem* mem, bool timing, int warp_id)
      : arch_(&arch), mem_(mem), timing_(timing), warp_id_(warp_id) {}

  [[nodiscard]] Reg<int> lane_id() const {
    Reg<int> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = l;
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> uniform(T v) const {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = v;
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> iota(T base, T step) const {
    Reg<T> r;
    T v = base;
    for (int l = 0; l < kWarpSize; ++l, v = static_cast<T>(v + step)) r[l] = v;
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> mad(const Reg<T>& a, const Reg<T>& b, const Reg<T>& c) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] * b[l] + c[l];
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> mad(const Reg<T>& a, T b, const Reg<T>& c) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] * b + c[l];
    time_arith(r);
    return r;
  }

  [[nodiscard]] Reg<Index> affine(const Reg<Index>& x, Index scale, Index offset) {
    Reg<Index> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = x[l] * scale + offset;
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> clamp(const Reg<T>& x, T lo, T hi) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = x[l] < lo ? lo : (x[l] > hi ? hi : x[l]);
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Pred cmp_ge(const Reg<T>& a, T b) {
    Pred r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] >= b ? 1 : 0;
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Pred cmp_lt(const Reg<T>& a, T b) {
    Pred r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] < b ? 1 : 0;
    time_arith(r);
    return r;
  }

  [[nodiscard]] Pred pred_and(const Pred& a, const Pred& b) {
    Pred r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = (a[l] != 0 && b[l] != 0) ? 1 : 0;
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> shfl_up(std::uint32_t, const Reg<T>& a, int delta) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = l >= delta ? a[l - delta] : a[l];
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> load_global(const T* base, const Reg<Index>& idx,
                                   const Pred* active = nullptr) {
    Reg<T> r;
    std::uint64_t addrs[kWarpSize];
    int n = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (active != nullptr && (*active)[l] == 0) continue;
      r[l] = base[idx[l]];
      addrs[n++] = reinterpret_cast<std::uint64_t>(base + idx[l]);
    }
    if (timing_) {
      (void)mem_->load({addrs, static_cast<std::size_t>(n)}, sizeof(T));
      r.ready = sb_.issue(idx.ready, 1.0, arch_->lat.dram);
    }
    return r;
  }

  template <typename T>
  void store_global(T* base, const Reg<Index>& idx, const Reg<T>& v,
                    const Pred* active = nullptr) {
    std::uint64_t addrs[kWarpSize];
    int n = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (active != nullptr && (*active)[l] == 0) continue;
      base[idx[l]] = v[l];
      addrs[n++] = reinterpret_cast<std::uint64_t>(base + idx[l]);
    }
    if (timing_) {
      (void)mem_->store({addrs, static_cast<std::size_t>(n)}, sizeof(T));
      (void)sb_.issue(idx.ready, 1.0, 0);
    }
  }

  template <typename T>
  [[nodiscard]] Reg<T> load_shared_broadcast(const Smem<T>& s, int idx) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = s.data[idx];
    if (timing_) r.ready = sb_.issue(0, 1.0, arch_->lat.smem);
    return r;
  }

  template <typename T>
  void store_shared(const Smem<T>& s, const Reg<int>& idx, const Reg<T>& v,
                    const Pred* active = nullptr) {
    for (int l = 0; l < kWarpSize; ++l) {
      if (active != nullptr && (*active)[l] == 0) continue;
      s.data[idx[l]] = v[l];
    }
    if (timing_) (void)sb_.issue(idx.ready, 1.0, 0);
  }

 private:
  template <typename R>
  void time_arith(Reg<R>& r) {
    if (!timing_) return;
    r.ready = sb_.issue(r.ready, 1.0, arch_->lat.fp_mad);
  }

  const ArchSpec* arch_;
  MemorySystem* mem_;
  bool timing_;
  int warp_id_;
  Scoreboard sb_;
};

/// Seed-style block context: reconstructed for every block, which allocates
/// (and zero-initializes) the full 48 KB shared-memory arena plus the warp
/// vector each time — the per-block overhead the pooled path eliminates.
class BlockContext {
 public:
  BlockContext(const ArchSpec& arch, const sim::LaunchConfig& cfg, BlockId id,
               MemorySystem* mem, bool timing)
      : id_(id), smem_(arch.smem_per_block) {
    warps_.reserve(static_cast<std::size_t>(cfg.warps_per_block()));
    for (int w = 0; w < cfg.warps_per_block(); ++w) {
      warps_.emplace_back(arch, mem, timing, w);
    }
  }

  [[nodiscard]] BlockId id() const { return id_; }
  [[nodiscard]] int warp_count() const { return static_cast<int>(warps_.size()); }
  [[nodiscard]] WarpContext& warp(int w) { return warps_[static_cast<std::size_t>(w)]; }

  template <typename T>
  [[nodiscard]] Smem<T> alloc_smem(int count) {
    return smem_.alloc<T>(count);
  }

  void sync() {}  // functional mode: no-op, as in the seed

 private:
  BlockId id_;
  SmemAllocator smem_;
  std::vector<WarpContext> warps_;
};

/// Seed-style functional launch: one freshly constructed BlockContext per
/// block.
template <typename Body>
void launch_functional(const sim::ArchSpec& arch, const sim::LaunchConfig& cfg,
                       Body&& body) {
  const long long blocks_total = cfg.grid.count();
  parallel_for(blocks_total, [&](std::int64_t flat) {
    BlockId id;
    id.x = static_cast<int>(flat % cfg.grid.x);
    id.y = static_cast<int>((flat / cfg.grid.x) % cfg.grid.y);
    id.z = static_cast<int>(flat / (static_cast<long long>(cfg.grid.x) * cfg.grid.y));
    BlockContext blk(arch, cfg, id, nullptr, /*timing=*/false);
    body(blk);
  });
}

/// Seed-style conv2d: identical math and op sequence to core::conv2d_ssam,
/// with heap-allocated register cache and accumulators.
template <typename T>
void conv2d(const sim::ArchSpec& arch, const GridView2D<const T>& in,
            const std::vector<T>& weights, int m, int n, GridView2D<T> out) {
  const int cx = (m - 1) / 2;
  const int cy = (n - 1) / 2;
  const Index width = in.width();
  const Index height = in.height();

  core::Blocking2D geom;
  geom.span = m - 1;
  geom.dx_min = -cx;
  geom.rows_halo = n - 1;
  geom.p = 4;
  geom.block_threads = 128;

  sim::LaunchConfig cfg;
  cfg.grid = geom.grid(width, height);
  cfg.block_threads = geom.block_threads;

  const T* wgt = weights.data();
  launch_functional(arch, cfg, [&, m, n, cx, cy, width, height, geom, wgt](BlockContext& blk) {
    Smem<T> smem = blk.alloc_smem<T>(m * n);
    {  // cooperative weight load (block-striped)
      const int threads = blk.warp_count() * kWarpSize;
      for (int w = 0; w < blk.warp_count(); ++w) {
        WarpContext& wc = blk.warp(w);
        for (int base = w * kWarpSize; base < m * n; base += threads) {
          Pred active = wc.cmp_lt(wc.iota<int>(base, 1), m * n);
          const Reg<T> v = wc.load_global(wgt, wc.iota<Index>(base, 1), &active);
          wc.store_shared(smem, wc.iota<int>(base, 1), v, &active);
        }
      }
      blk.sync();
    }

    for (int w = 0; w < blk.warp_count(); ++w) {
      WarpContext& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;
      const Index row0 = geom.top_row(blk.id().y, cy);

      // Heap-allocated register cache rows (seed RegisterCache).
      std::vector<Reg<T>> rows(static_cast<std::size_t>(geom.c()));
      Reg<Index> col = wc.clamp(wc.iota<Index>(col0, 1), Index{0}, width - 1);
      for (int r = 0; r < geom.c(); ++r) {
        Index y = row0 + r;
        y = y < 0 ? 0 : (y >= height ? height - 1 : y);
        rows[static_cast<std::size_t>(r)] =
            wc.load_global(in.data(), wc.affine(col, 1, y * in.pitch()));
      }

      std::vector<Reg<T>> result(static_cast<std::size_t>(geom.p));
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sum = wc.uniform(T{});
        for (int fm = 0; fm < m; ++fm) {
          if (fm > 0) sum = wc.shfl_up(kFullMask, sum, 1);
          for (int fn = 0; fn < n; ++fn) {
            const Reg<T> wt = wc.load_shared_broadcast(smem, fn * m + fm);
            sum = wc.mad(rows[static_cast<std::size_t>(i + fn)], wt, sum);
          }
        }
        result[static_cast<std::size_t>(i)] = sum;
      }

      const Reg<Index> out_x = wc.affine(wc.iota<Index>(0, 1), 1, col0 - (m - 1) + cx);
      Pred ok = wc.pred_and(wc.cmp_ge(wc.lane_id(), m - 1), wc.cmp_lt(out_x, width));
      for (int i = 0; i < geom.p; ++i) {
        const Index oy = static_cast<Index>(blk.id().y) * geom.p + i;
        if (oy >= height) break;
        const Reg<Index> oidx = wc.affine(out_x, 1, oy * out.pitch());
        wc.store_global(out.data(), oidx, result[static_cast<std::size_t>(i)], &ok);
      }
    }
  });
}

/// Seed-style stencil2d with the plan's shift schedule.
template <typename T>
void stencil2d(const sim::ArchSpec& arch, const GridView2D<const T>& in,
               const core::SystolicPlan<T>& plan, GridView2D<T> out) {
  const core::ColumnPass<T>& pass = plan.passes.front();
  const Index width = in.width();
  const Index height = in.height();

  core::Blocking2D geom;
  geom.span = plan.span();
  geom.dx_min = plan.dx_min;
  geom.rows_halo = plan.rows_halo();
  geom.p = 4;
  geom.block_threads = 128;

  sim::LaunchConfig cfg;
  cfg.grid = geom.grid(width, height);
  cfg.block_threads = geom.block_threads;

  const int dy_min = plan.dy_min;
  const int anchor = plan.anchor_dx;
  launch_functional(arch, cfg, [&, geom, dy_min, anchor, width, height](BlockContext& blk) {
    for (int w = 0; w < blk.warp_count(); ++w) {
      WarpContext& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;
      const Index row0 = static_cast<Index>(blk.id().y) * geom.p + dy_min;

      std::vector<Reg<T>> rows(static_cast<std::size_t>(geom.c()));
      Reg<Index> col = wc.clamp(wc.iota<Index>(col0, 1), Index{0}, width - 1);
      for (int r = 0; r < geom.c(); ++r) {
        Index y = row0 + r;
        y = y < 0 ? 0 : (y >= height ? height - 1 : y);
        rows[static_cast<std::size_t>(r)] =
            wc.load_global(in.data(), wc.affine(col, 1, y * in.pitch()));
      }

      std::vector<Reg<T>> result(static_cast<std::size_t>(geom.p));
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sum = wc.uniform(T{});
        for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
          if (ci > 0) sum = wc.shfl_up(kFullMask, sum, 1);
          for (const core::ColumnTap<T>& tap : pass.columns[ci]) {
            sum = wc.mad(rows[static_cast<std::size_t>(i + tap.dy - dy_min)],
                         tap.coeff, sum);
          }
        }
        result[static_cast<std::size_t>(i)] = sum;
      }

      const Reg<Index> out_x = wc.affine(wc.iota<Index>(0, 1), 1, col0 - anchor);
      Pred ok = wc.pred_and(wc.cmp_ge(wc.lane_id(), geom.span), wc.cmp_lt(out_x, width));
      for (int i = 0; i < geom.p; ++i) {
        const Index oy = static_cast<Index>(blk.id().y) * geom.p + i;
        if (oy >= height) break;
        const Reg<Index> oidx = wc.affine(out_x, 1, oy * out.pitch());
        wc.store_global(out.data(), oidx, result[static_cast<std::size_t>(i)], &ok);
      }
    }
  });
}

}  // namespace legacy

// ===========================================================================
// Measurement harness
// ===========================================================================

struct KernelResult {
  std::string name;
  long long blocks = 0;
  double cells = 0.0;
  double flops_per_cell = 0.0;
  double seconds = 0.0;     ///< best-of per-rep wall time, current path
  double legacy_seconds = 0.0;  ///< 0 when no legacy replica exists
  double serial_seconds = 0.0;  ///< pipeline only: sum-of-stages serial time

  [[nodiscard]] double blocks_per_sec() const {
    return static_cast<double>(blocks) / seconds;
  }
  [[nodiscard]] double cells_per_sec() const { return cells / seconds; }
  [[nodiscard]] double lane_ops_per_sec() const {
    return cells * flops_per_cell / seconds;
  }
  [[nodiscard]] double speedup_vs_legacy() const {
    return legacy_seconds > 0.0 ? legacy_seconds / seconds : 0.0;
  }
  [[nodiscard]] double overlap_speedup() const {
    return serial_seconds > 0.0 ? serial_seconds / seconds : 0.0;
  }
};

/// Runs fn repeatedly and returns the best per-rep wall time (seconds).
template <typename Fn>
double best_time(Fn&& fn, int reps = 3) {
  double best = 1e100;
  fn();  // warm-up
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Times two alternatives with interleaved reps (A B A B ...) so host load
/// drift hits both equally, and returns their best per-rep times. The
/// speedup quoted from these is robust against slow monotone noise.
template <typename FnA, typename FnB>
std::pair<double, double> best_time_interleaved(FnA&& a, FnB&& b, int reps = 5) {
  double best_a = 1e100;
  double best_b = 1e100;
  a();  // warm-up both
  b();
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    a();
    auto t1 = std::chrono::steady_clock::now();
    b();
    auto t2 = std::chrono::steady_clock::now();
    best_a = std::min(best_a, std::chrono::duration<double>(t1 - t0).count());
    best_b = std::min(best_b, std::chrono::duration<double>(t2 - t1).count());
  }
  return {best_a, best_b};
}

void write_json(const std::vector<KernelResult>& results, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const int threads = ssam::ThreadPool::global().size();
  std::fprintf(f, "{\n  \"benchmark\": \"sim_throughput\",\n  \"mode\": \"functional\",\n");
  std::fprintf(f, "  \"host_threads\": %d,\n  \"kernels\": [\n", threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"blocks\": %lld, \"seconds\": %.6f, "
                 "\"blocks_per_sec\": %.1f, \"cells_per_sec\": %.1f, "
                 "\"lane_ops_per_sec\": %.1f",
                 r.name.c_str(), r.blocks, r.seconds, r.blocks_per_sec(),
                 r.cells_per_sec(), r.lane_ops_per_sec());
    if (r.legacy_seconds > 0.0) {
      std::fprintf(f,
                   ", \"legacy_seconds\": %.6f, \"legacy_blocks_per_sec\": %.1f, "
                   "\"speedup_vs_legacy\": %.2f",
                   r.legacy_seconds, static_cast<double>(r.blocks) / r.legacy_seconds,
                   r.speedup_vs_legacy());
    }
    if (r.serial_seconds > 0.0) {
      std::fprintf(f, ", \"serial_seconds\": %.6f, \"overlap_speedup\": %.2f",
                   r.serial_seconds, r.overlap_speedup());
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_sim_throughput.json";
  const auto& arch = sim::tesla_v100();
  std::vector<KernelResult> results;

  const Index w2d = 2048, h2d = 2048;
  Grid2D<float> in2d(w2d, h2d);
  fill_random(in2d, 1);
  Grid2D<float> out2d(w2d, h2d);

  // --- conv2d 5x5 (with legacy comparison) ---------------------------------
  {
    const int m = 5, n = 5;
    std::vector<float> weights(static_cast<std::size_t>(m * n), 0.04f);
    KernelResult r;
    r.name = "conv2d_5x5";
    r.cells = static_cast<double>(w2d) * static_cast<double>(h2d);
    r.flops_per_cell = 2.0 * m * n;
    sim::KernelStats stats;
    const auto [cur, leg] = best_time_interleaved(
        [&] {
          stats = core::conv2d_ssam<float>(arch, in2d.cview(), weights, m, n, out2d.view());
        },
        [&] { legacy::conv2d<float>(arch, in2d.cview(), weights, m, n, out2d.view()); });
    r.seconds = cur;
    r.legacy_seconds = leg;
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms  (legacy %10.3f ms, speedup %.2fx)\n", r.name.c_str(),
                r.seconds * 1e3, r.legacy_seconds * 1e3, r.speedup_vs_legacy());
    results.push_back(r);
  }

  // --- stencil2d star-1 (with legacy comparison) ---------------------------
  {
    const core::StencilShape<float> shape = core::star2d<float>(1);
    const core::SystolicPlan<float> plan = core::build_plan(shape.taps);
    KernelResult r;
    r.name = "stencil2d_star1";
    r.cells = static_cast<double>(w2d) * static_cast<double>(h2d);
    r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
    sim::KernelStats stats;
    const auto [cur, leg] = best_time_interleaved(
        [&] {
          stats = core::stencil2d_ssam<float>(arch, in2d.cview(), plan, out2d.view());
        },
        [&] { legacy::stencil2d<float>(arch, in2d.cview(), plan, out2d.view()); });
    r.seconds = cur;
    r.legacy_seconds = leg;
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms  (legacy %10.3f ms, speedup %.2fx)\n", r.name.c_str(),
                r.seconds * 1e3, r.legacy_seconds * 1e3, r.speedup_vs_legacy());
    results.push_back(r);
  }

  // --- temporal stencil, t=4 ------------------------------------------------
  {
    const core::StencilShape<float> shape = core::star2d<float>(1);
    core::TemporalSsamOptions opt;
    opt.t = 4;
    KernelResult r;
    r.name = "stencil2d_temporal_t4";
    r.cells = static_cast<double>(w2d) * static_cast<double>(h2d) * opt.t;
    r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
    sim::KernelStats stats;
    r.seconds = best_time([&] {
      stats = core::stencil2d_ssam_temporal<float>(arch, in2d.cview(), shape,
                                                   out2d.view(), opt);
    });
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms\n", r.name.c_str(), r.seconds * 1e3);
    results.push_back(r);
  }

  // --- stencil3d star-1 -----------------------------------------------------
  {
    const Index n3 = 192;
    Grid3D<float> in3d(n3, n3, n3);
    fill_random(in3d, 2);
    Grid3D<float> out3d(n3, n3, n3);
    const core::StencilShape<float> shape = core::star3d<float>(1);
    KernelResult r;
    r.name = "stencil3d_star1";
    r.cells = static_cast<double>(n3) * n3 * n3;
    r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
    sim::KernelStats stats;
    r.seconds = best_time([&] {
      stats = core::stencil3d_ssam<float>(arch, in3d.cview(), shape, out3d.view());
    });
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms\n", r.name.c_str(), r.seconds * 1e3);
    results.push_back(r);
  }

  // --- device-wide scan -----------------------------------------------------
  {
    std::vector<float> in(static_cast<std::size_t>(4) << 20);
    SplitMix64 rng(3);
    for (auto& v : in) v = static_cast<float>(rng.next_in(-1.0, 1.0));
    std::vector<float> out(in.size());
    KernelResult r;
    r.name = "scan_4m";
    r.cells = static_cast<double>(in.size());
    r.flops_per_cell = 5.0;  // log2(warp) Kogge-Stone adds per element
    std::vector<sim::KernelStats> stats;
    r.seconds = best_time([&] { stats = core::scan_inclusive<float>(arch, in, out); });
    for (const auto& s : stats) r.blocks += s.blocks_total;
    std::printf("%-24s %10.3f ms\n", r.name.c_str(), r.seconds * 1e3);
    results.push_back(r);
  }

  // --- gemm -----------------------------------------------------------------
  {
    const Index n = 512;
    Grid2D<float> a(n, n), b(n, n), c(n, n);
    fill_random(a, 4);
    fill_random(b, 5);
    KernelResult r;
    r.name = "gemm_512";
    r.cells = static_cast<double>(n) * n;
    r.flops_per_cell = 2.0 * static_cast<double>(n);
    sim::KernelStats stats;
    r.seconds = best_time([&] {
      stats = core::gemm_ssam<float>(arch, a.cview(), b.cview(), c.view());
    });
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms\n", r.name.c_str(), r.seconds * 1e3);
    results.push_back(r);
  }

  // --- multi-kernel pipeline: blur -> (sobel_x, sobel_y) over a batch -------
  // Serial path launches every stage back-to-back; the stream path runs each
  // image's chain on its own stream (the two Sobels fork onto a second
  // stream after an event), so independent stages and independent images
  // overlap across pool workers. With one worker the stream path degrades to
  // the serial schedule.
  {
    const Index np = 1024;
    const int kImages = 4;
    std::vector<float> gauss(25, 0.04f);
    const std::vector<float> sobel_x = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
    const std::vector<float> sobel_y = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
    std::vector<Grid2D<float>> img, blur, gx, gy;
    for (int i = 0; i < kImages; ++i) {
      img.emplace_back(np, np);
      fill_random(img.back(), 10 + i);
      blur.emplace_back(np, np);
      gx.emplace_back(np, np);
      gy.emplace_back(np, np);
    }

    long long pipeline_blocks = 0;
    auto serial_pass = [&] {
      pipeline_blocks = 0;
      for (int i = 0; i < kImages; ++i) {
        pipeline_blocks += core::conv2d_ssam<float>(arch, img[static_cast<std::size_t>(i)].cview(),
                                                    gauss, 5, 5,
                                                    blur[static_cast<std::size_t>(i)].view())
                               .blocks_total;
        pipeline_blocks += core::conv2d_ssam<float>(arch, blur[static_cast<std::size_t>(i)].cview(),
                                                    sobel_x, 3, 3,
                                                    gx[static_cast<std::size_t>(i)].view())
                               .blocks_total;
        pipeline_blocks += core::conv2d_ssam<float>(arch, blur[static_cast<std::size_t>(i)].cview(),
                                                    sobel_y, 3, 3,
                                                    gy[static_cast<std::size_t>(i)].view())
                               .blocks_total;
      }
    };
    auto stream_pass = [&] {
      std::vector<std::unique_ptr<sim::Stream>> main_streams, fork_streams;
      for (int i = 0; i < kImages; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        main_streams.push_back(std::make_unique<sim::Stream>());
        fork_streams.push_back(std::make_unique<sim::Stream>());
        sim::Stream& s1 = *main_streams.back();
        sim::Stream& s2 = *fork_streams.back();
        core::conv2d_ssam_async<float>(s1, arch, img[ui].cview(), gauss, 5, 5,
                                       blur[ui].view());
        const sim::Event blurred = s1.record();
        core::conv2d_ssam_async<float>(s1, arch, blur[ui].cview(), sobel_x, 3, 3,
                                       gx[ui].view());
        s2.wait(blurred);
        core::conv2d_ssam_async<float>(s2, arch, blur[ui].cview(), sobel_y, 3, 3,
                                       gy[ui].view());
      }
      for (auto& s : main_streams) s->synchronize();
      for (auto& s : fork_streams) s->synchronize();
    };

    KernelResult r;
    r.name = "pipeline_blur_sobel_x4";
    r.cells = static_cast<double>(np) * np * kImages * 3;  // 3 stages per image
    r.flops_per_cell = (2.0 * 25 + 2.0 * 9 + 2.0 * 9) / 3.0;
    const auto [stream_t, serial_t] = best_time_interleaved(stream_pass, serial_pass);
    r.seconds = stream_t;
    r.serial_seconds = serial_t;
    r.blocks = pipeline_blocks;
    std::printf("%-24s %10.3f ms  (serial %10.3f ms, overlap %.2fx, %d workers)\n",
                r.name.c_str(), r.seconds * 1e3, r.serial_seconds * 1e3,
                r.overlap_speedup(), ThreadPool::global().size());
    results.push_back(r);
  }

  write_json(results, out_path);

  const double conv_speedup = results[0].speedup_vs_legacy();
  const double stencil_speedup = results[1].speedup_vs_legacy();
  std::printf("\nfunctional-path speedup vs pre-refactor: conv2d %.2fx, stencil2d %.2fx\n",
              conv_speedup, stencil_speedup);
  return 0;
}
