// Host-side functional-mode simulator throughput: blocks/sec and lane-ops/sec
// per kernel, written to BENCH_sim_throughput.json so the speedup is tracked
// across PRs.
//
// Simulation throughput is the binding constraint on how large a grid, how
// many filter shapes, and how many architectures the harness can sweep, so
// this bench measures the *simulator's own* speed (not the simulated GPU's).
// For conv2d and stencil2d it also replays the kernels on a faithful replica
// of the pre-specialization execution path — runtime `timing` flag, scalar
// 32-lane loops, per-block BlockContext reconstruction (48 KB zeroed shared
// arena + warp vector per block), heap-allocated accumulators — and reports
// the speedup of the compile-time-specialized SIMD path over it.
// It also runs a multi-kernel *pipeline* scenario (blur + Sobel pair over a
// batch of images) serially and as overlapping streams on the launch queue,
// reporting end-to-end pipeline throughput — the number the async
// execution-service work is accountable to.
// The *persistent_vs_relaunch* scenario compares the two iteration models
// for temporal stencils over the same 32 plain time steps (at 1 worker and
// at >= 4 workers): the per-step relaunch path must fuse t=4 steps with the
// ghost-zone temporal kernel to amortize the per-step global-array
// round-trip, paying its halo redundancy (3x row reload, 8 dead lanes per
// warp); the persistent engine (core/iterate_persistent.hpp) keeps tiles
// resident across steps and exchanges exact halos through lock-free
// channels, so it advances step by step with no ghost zones. The scenario
// also runs the persistent engine at the *same* t as the relaunch path and
// checks both models produce bit-identical outputs (the same-t speedup is
// reported alongside the headline one, and the exact-exchange result is
// verified against a plain per-step reference).
// The *sharded_vs_single* scenario runs the persistent engine sharded
// across a virtual device group (core/shard.hpp + gpusim/device.hpp) at 2
// and 4 devices against the one-pool run, and gates on the sharded outputs
// being bit-identical to the single-device ones under both policies.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/autotune.hpp"
#include "core/chain.hpp"
#include "core/job.hpp"
#include "core/conv2d.hpp"
#include "core/gemm.hpp"
#include "core/iterate_persistent.hpp"
#include "core/scan.hpp"
#include "core/shard.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil2d_temporal.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/simd/simd.hpp"
#include "gpusim/stream.hpp"

namespace {

using namespace ssam;

// ===========================================================================
// Legacy execution path: a faithful replica of the seed simulator's
// functional mode (pre compile-time specialization), kept here so the bench
// can measure the interpretive overhead the refactor removed.
// ===========================================================================

namespace legacy {

using sim::ArchSpec;
using sim::Counters;
using sim::kFullMask;
using sim::kWarpSize;
using sim::MemorySystem;
using sim::Scoreboard;
using sim::Smem;
using sim::SmemAllocator;

/// Seed register types, verbatim: value-initializing members, so every
/// constructed register zeroed its 32 lanes — part of the interpretive
/// overhead the compile-time-specialized path removed.
template <typename T>
struct Vec {
  std::array<T, kWarpSize> lane{};
  [[nodiscard]] T& operator[](int i) { return lane[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const T& operator[](int i) const { return lane[static_cast<std::size_t>(i)]; }
};

template <typename T>
struct Reg {
  Vec<T> v{};
  Cycle ready = 0;
  [[nodiscard]] T& operator[](int i) { return v[i]; }
  [[nodiscard]] const T& operator[](int i) const { return v[i]; }
};

using Pred = Reg<int>;

class WarpContext {
 public:
  WarpContext(const ArchSpec& arch, MemorySystem* mem, bool timing, int warp_id)
      : arch_(&arch), mem_(mem), timing_(timing), warp_id_(warp_id) {}

  [[nodiscard]] Reg<int> lane_id() const {
    Reg<int> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = l;
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> uniform(T v) const {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = v;
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> iota(T base, T step) const {
    Reg<T> r;
    T v = base;
    for (int l = 0; l < kWarpSize; ++l, v = static_cast<T>(v + step)) r[l] = v;
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> mad(const Reg<T>& a, const Reg<T>& b, const Reg<T>& c) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] * b[l] + c[l];
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> mad(const Reg<T>& a, T b, const Reg<T>& c) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] * b + c[l];
    time_arith(r);
    return r;
  }

  [[nodiscard]] Reg<Index> affine(const Reg<Index>& x, Index scale, Index offset) {
    Reg<Index> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = x[l] * scale + offset;
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> clamp(const Reg<T>& x, T lo, T hi) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = x[l] < lo ? lo : (x[l] > hi ? hi : x[l]);
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Pred cmp_ge(const Reg<T>& a, T b) {
    Pred r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] >= b ? 1 : 0;
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Pred cmp_lt(const Reg<T>& a, T b) {
    Pred r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] < b ? 1 : 0;
    time_arith(r);
    return r;
  }

  [[nodiscard]] Pred pred_and(const Pred& a, const Pred& b) {
    Pred r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = (a[l] != 0 && b[l] != 0) ? 1 : 0;
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> add(const Reg<T>& a, const Reg<T>& b) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] + b[l];
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> add(const Reg<T>& a, T b) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = a[l] + b;
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> select(const Pred& pred, const Reg<T>& a, const Reg<T>& b) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = pred[l] != 0 ? a[l] : b[l];
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> shfl_up(std::uint32_t, const Reg<T>& a, int delta) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = l >= delta ? a[l - delta] : a[l];
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> shfl_idx(std::uint32_t, const Reg<T>& a, int src_lane) {
    Reg<T> r;
    const T v = a[src_lane & (kWarpSize - 1)];
    for (int l = 0; l < kWarpSize; ++l) r[l] = v;
    time_arith(r);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> load_global(const T* base, const Reg<Index>& idx,
                                   const Pred* active = nullptr) {
    Reg<T> r;
    std::uint64_t addrs[kWarpSize];
    int n = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (active != nullptr && (*active)[l] == 0) continue;
      r[l] = base[idx[l]];
      addrs[n++] = reinterpret_cast<std::uint64_t>(base + idx[l]);
    }
    if (timing_) {
      (void)mem_->load({addrs, static_cast<std::size_t>(n)}, sizeof(T));
      r.ready = sb_.issue(idx.ready, 1.0, arch_->lat.dram);
    }
    return r;
  }

  template <typename T>
  void store_global(T* base, const Reg<Index>& idx, const Reg<T>& v,
                    const Pred* active = nullptr) {
    std::uint64_t addrs[kWarpSize];
    int n = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (active != nullptr && (*active)[l] == 0) continue;
      base[idx[l]] = v[l];
      addrs[n++] = reinterpret_cast<std::uint64_t>(base + idx[l]);
    }
    if (timing_) {
      (void)mem_->store({addrs, static_cast<std::size_t>(n)}, sizeof(T));
      (void)sb_.issue(idx.ready, 1.0, 0);
    }
  }

  template <typename T>
  [[nodiscard]] Reg<T> load_shared(const Smem<T>& s, const Reg<int>& idx,
                                   const Pred* active = nullptr) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) {
      if (active != nullptr && (*active)[l] == 0) continue;
      r[l] = s.data[idx[l]];
    }
    if (timing_) r.ready = sb_.issue(idx.ready, 1.0, arch_->lat.smem);
    return r;
  }

  template <typename T>
  [[nodiscard]] Reg<T> load_shared_broadcast(const Smem<T>& s, int idx) {
    Reg<T> r;
    for (int l = 0; l < kWarpSize; ++l) r[l] = s.data[idx];
    if (timing_) r.ready = sb_.issue(0, 1.0, arch_->lat.smem);
    return r;
  }

  template <typename T>
  void store_shared(const Smem<T>& s, const Reg<int>& idx, const Reg<T>& v,
                    const Pred* active = nullptr) {
    for (int l = 0; l < kWarpSize; ++l) {
      if (active != nullptr && (*active)[l] == 0) continue;
      s.data[idx[l]] = v[l];
    }
    if (timing_) (void)sb_.issue(idx.ready, 1.0, 0);
  }

 private:
  template <typename R>
  void time_arith(Reg<R>& r) {
    if (!timing_) return;
    r.ready = sb_.issue(r.ready, 1.0, arch_->lat.fp_mad);
  }

  const ArchSpec* arch_;
  MemorySystem* mem_;
  bool timing_;
  int warp_id_;
  Scoreboard sb_;
};

/// Seed-style block context: reconstructed for every block, which allocates
/// (and zero-initializes) the full 48 KB shared-memory arena plus the warp
/// vector each time — the per-block overhead the pooled path eliminates.
class BlockContext {
 public:
  BlockContext(const ArchSpec& arch, const sim::LaunchConfig& cfg, BlockId id,
               MemorySystem* mem, bool timing)
      : id_(id), smem_(arch.smem_per_block) {
    warps_.reserve(static_cast<std::size_t>(cfg.warps_per_block()));
    for (int w = 0; w < cfg.warps_per_block(); ++w) {
      warps_.emplace_back(arch, mem, timing, w);
    }
  }

  [[nodiscard]] BlockId id() const { return id_; }
  [[nodiscard]] int warp_count() const { return static_cast<int>(warps_.size()); }
  [[nodiscard]] WarpContext& warp(int w) { return warps_[static_cast<std::size_t>(w)]; }

  template <typename T>
  [[nodiscard]] Smem<T> alloc_smem(int count) {
    return smem_.alloc<T>(count);
  }

  void sync() {}  // functional mode: no-op, as in the seed

 private:
  BlockId id_;
  SmemAllocator smem_;
  std::vector<WarpContext> warps_;
};

/// Seed-style functional launch: one freshly constructed BlockContext per
/// block.
template <typename Body>
void launch_functional(const sim::ArchSpec& arch, const sim::LaunchConfig& cfg,
                       Body&& body) {
  const long long blocks_total = cfg.grid.count();
  parallel_for(blocks_total, [&](std::int64_t flat) {
    BlockId id;
    id.x = static_cast<int>(flat % cfg.grid.x);
    id.y = static_cast<int>((flat / cfg.grid.x) % cfg.grid.y);
    id.z = static_cast<int>(flat / (static_cast<long long>(cfg.grid.x) * cfg.grid.y));
    BlockContext blk(arch, cfg, id, nullptr, /*timing=*/false);
    body(blk);
  });
}

/// Seed-style conv2d: identical math and op sequence to core::conv2d_ssam,
/// with heap-allocated register cache and accumulators.
template <typename T>
void conv2d(const sim::ArchSpec& arch, const GridView2D<const T>& in,
            const std::vector<T>& weights, int m, int n, GridView2D<T> out) {
  const int cx = (m - 1) / 2;
  const int cy = (n - 1) / 2;
  const Index width = in.width();
  const Index height = in.height();

  core::Blocking2D geom;
  geom.span = m - 1;
  geom.dx_min = -cx;
  geom.rows_halo = n - 1;
  geom.p = 4;
  geom.block_threads = 128;

  sim::LaunchConfig cfg;
  cfg.grid = geom.grid(width, height);
  cfg.block_threads = geom.block_threads;

  const T* wgt = weights.data();
  launch_functional(arch, cfg, [&, m, n, cx, cy, width, height, geom, wgt](BlockContext& blk) {
    Smem<T> smem = blk.alloc_smem<T>(m * n);
    {  // cooperative weight load (block-striped)
      const int threads = blk.warp_count() * kWarpSize;
      for (int w = 0; w < blk.warp_count(); ++w) {
        WarpContext& wc = blk.warp(w);
        for (int base = w * kWarpSize; base < m * n; base += threads) {
          Pred active = wc.cmp_lt(wc.iota<int>(base, 1), m * n);
          const Reg<T> v = wc.load_global(wgt, wc.iota<Index>(base, 1), &active);
          wc.store_shared(smem, wc.iota<int>(base, 1), v, &active);
        }
      }
      blk.sync();
    }

    for (int w = 0; w < blk.warp_count(); ++w) {
      WarpContext& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;
      const Index row0 = geom.top_row(blk.id().y, cy);

      // Heap-allocated register cache rows (seed RegisterCache).
      std::vector<Reg<T>> rows(static_cast<std::size_t>(geom.c()));
      Reg<Index> col = wc.clamp(wc.iota<Index>(col0, 1), Index{0}, width - 1);
      for (int r = 0; r < geom.c(); ++r) {
        Index y = row0 + r;
        y = y < 0 ? 0 : (y >= height ? height - 1 : y);
        rows[static_cast<std::size_t>(r)] =
            wc.load_global(in.data(), wc.affine(col, 1, y * in.pitch()));
      }

      std::vector<Reg<T>> result(static_cast<std::size_t>(geom.p));
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sum = wc.uniform(T{});
        for (int fm = 0; fm < m; ++fm) {
          if (fm > 0) sum = wc.shfl_up(kFullMask, sum, 1);
          for (int fn = 0; fn < n; ++fn) {
            const Reg<T> wt = wc.load_shared_broadcast(smem, fn * m + fm);
            sum = wc.mad(rows[static_cast<std::size_t>(i + fn)], wt, sum);
          }
        }
        result[static_cast<std::size_t>(i)] = sum;
      }

      const Reg<Index> out_x = wc.affine(wc.iota<Index>(0, 1), 1, col0 - (m - 1) + cx);
      Pred ok = wc.pred_and(wc.cmp_ge(wc.lane_id(), m - 1), wc.cmp_lt(out_x, width));
      for (int i = 0; i < geom.p; ++i) {
        const Index oy = static_cast<Index>(blk.id().y) * geom.p + i;
        if (oy >= height) break;
        const Reg<Index> oidx = wc.affine(out_x, 1, oy * out.pitch());
        wc.store_global(out.data(), oidx, result[static_cast<std::size_t>(i)], &ok);
      }
    }
  });
}

/// Seed-style stencil2d with the plan's shift schedule.
template <typename T>
void stencil2d(const sim::ArchSpec& arch, const GridView2D<const T>& in,
               const core::SystolicPlan<T>& plan, GridView2D<T> out) {
  const core::ColumnPass<T>& pass = plan.passes.front();
  const Index width = in.width();
  const Index height = in.height();

  core::Blocking2D geom;
  geom.span = plan.span();
  geom.dx_min = plan.dx_min;
  geom.rows_halo = plan.rows_halo();
  geom.p = 4;
  geom.block_threads = 128;

  sim::LaunchConfig cfg;
  cfg.grid = geom.grid(width, height);
  cfg.block_threads = geom.block_threads;

  const int dy_min = plan.dy_min;
  const int anchor = plan.anchor_dx;
  launch_functional(arch, cfg, [&, geom, dy_min, anchor, width, height](BlockContext& blk) {
    for (int w = 0; w < blk.warp_count(); ++w) {
      WarpContext& wc = blk.warp(w);
      const long long warp_linear =
          static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
      const Index col0 = geom.lane0_col(warp_linear);
      if (col0 - geom.dx_min >= width) continue;
      const Index row0 = static_cast<Index>(blk.id().y) * geom.p + dy_min;

      std::vector<Reg<T>> rows(static_cast<std::size_t>(geom.c()));
      Reg<Index> col = wc.clamp(wc.iota<Index>(col0, 1), Index{0}, width - 1);
      for (int r = 0; r < geom.c(); ++r) {
        Index y = row0 + r;
        y = y < 0 ? 0 : (y >= height ? height - 1 : y);
        rows[static_cast<std::size_t>(r)] =
            wc.load_global(in.data(), wc.affine(col, 1, y * in.pitch()));
      }

      std::vector<Reg<T>> result(static_cast<std::size_t>(geom.p));
      for (int i = 0; i < geom.p; ++i) {
        Reg<T> sum = wc.uniform(T{});
        for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
          if (ci > 0) sum = wc.shfl_up(kFullMask, sum, 1);
          for (const core::ColumnTap<T>& tap : pass.columns[ci]) {
            sum = wc.mad(rows[static_cast<std::size_t>(i + tap.dy - dy_min)],
                         tap.coeff, sum);
          }
        }
        result[static_cast<std::size_t>(i)] = sum;
      }

      const Reg<Index> out_x = wc.affine(wc.iota<Index>(0, 1), 1, col0 - anchor);
      Pred ok = wc.pred_and(wc.cmp_ge(wc.lane_id(), geom.span), wc.cmp_lt(out_x, width));
      for (int i = 0; i < geom.p; ++i) {
        const Index oy = static_cast<Index>(blk.id().y) * geom.p + i;
        if (oy >= height) break;
        const Reg<Index> oidx = wc.affine(out_x, 1, oy * out.pitch());
        wc.store_global(out.data(), oidx, result[static_cast<std::size_t>(i)], &ok);
      }
    }
  });
}

/// Seed-style temporal blocking: t fused sweeps entirely in heap-allocated
/// register rows, ping-ponged through std::vector levels.
template <typename T>
void stencil2d_temporal(const sim::ArchSpec& arch, const GridView2D<const T>& in,
                        const core::SystolicPlan<T>& plan, GridView2D<T> out, int t,
                        int p) {
  const core::ColumnPass<T>& pass = plan.passes.front();
  const Index width = in.width();
  const Index height = in.height();
  const int dy_span = plan.rows_halo();

  core::Blocking2D geom;
  geom.span = t * plan.span();
  geom.dx_min = t * plan.dx_min;
  geom.rows_halo = t * dy_span;
  geom.p = p;
  geom.block_threads = 128;

  sim::LaunchConfig cfg;
  cfg.grid = geom.grid(width, height);
  cfg.block_threads = geom.block_threads;

  const int dy_min = plan.dy_min;
  const int anchor = plan.anchor_dx;
  launch_functional(
      arch, cfg, [&, geom, dy_min, anchor, width, height, t, dy_span](BlockContext& blk) {
        for (int w = 0; w < blk.warp_count(); ++w) {
          WarpContext& wc = blk.warp(w);
          const long long warp_linear =
              static_cast<long long>(blk.id().x) * geom.warps_per_block() + w;
          const Index col0 = geom.lane0_col(warp_linear);
          if (col0 - geom.dx_min >= width) continue;
          const Index row0 = static_cast<Index>(blk.id().y) * geom.p +
                             static_cast<Index>(t) * dy_min;

          std::vector<Reg<T>> cur(static_cast<std::size_t>(geom.c()));
          Reg<Index> col = wc.clamp(wc.iota<Index>(col0, 1), Index{0}, width - 1);
          for (int r = 0; r < geom.c(); ++r) {
            Index y = row0 + r;
            y = y < 0 ? 0 : (y >= height ? height - 1 : y);
            cur[static_cast<std::size_t>(r)] =
                wc.load_global(in.data(), wc.affine(col, 1, y * in.pitch()));
          }

          std::vector<Reg<T>> nxt;
          for (int s = 0; s < t; ++s) {
            const int next_rows = static_cast<int>(cur.size()) - dy_span;
            nxt.assign(static_cast<std::size_t>(next_rows), Reg<T>{});
            for (int r = 0; r < next_rows; ++r) {
              Reg<T> sum = wc.uniform(T{});
              for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
                if (ci > 0) sum = wc.shfl_up(kFullMask, sum, 1);
                for (const core::ColumnTap<T>& tap : pass.columns[ci]) {
                  sum = wc.mad(cur[static_cast<std::size_t>(r + tap.dy - dy_min)],
                               tap.coeff, sum);
                }
              }
              nxt[static_cast<std::size_t>(r)] = sum;
            }
            cur.swap(nxt);
          }

          const Reg<Index> out_x =
              wc.affine(wc.iota<Index>(0, 1), 1, col0 - static_cast<Index>(t) * anchor);
          Pred ok = wc.pred_and(wc.cmp_ge(wc.lane_id(), geom.span), wc.cmp_lt(out_x, width));
          for (int i = 0; i < geom.p; ++i) {
            const Index oy = static_cast<Index>(blk.id().y) * geom.p + i;
            if (oy >= height) break;
            wc.store_global(out.data(), wc.affine(out_x, 1, oy * out.pitch()),
                            cur[static_cast<std::size_t>(i)], &ok);
          }
        }
      });
}

/// Seed-style 3D stencil: per-plane warps with heap register rows, partial
/// sums published through shared memory, explicit predicated stores.
template <typename T>
void stencil3d(const sim::ArchSpec& arch, const GridView3D<const T>& in,
               const core::SystolicPlan<T>& plan, GridView3D<T> out, int p = 2,
               int warps = 8) {
  const int rz = plan.rz();
  const Index nx = in.nx();
  const Index ny = in.ny();
  const Index nz = in.nz();

  core::Blocking2D geom;
  geom.span = plan.span();
  geom.dx_min = plan.dx_min;
  geom.rows_halo = plan.rows_halo();
  geom.p = p;
  geom.block_threads = warps * kWarpSize;

  core::Blocking3D geom3;
  geom3.plane = geom;
  geom3.rz = rz;
  geom3.warps = warps;

  const core::ColumnPass<T>* center_pass = nullptr;
  std::vector<core::ColumnPass<T>> off_passes;
  for (const auto& ps : plan.passes) {
    if (ps.dz == 0) {
      center_pass = &ps;
    } else {
      off_passes.push_back(ps);
    }
  }
  const int n_off = static_cast<int>(off_passes.size());
  const int dy_min = plan.dy_min;
  const int anchor = plan.anchor_dx;
  const int vp = geom3.valid_planes();

  sim::LaunchConfig cfg;
  cfg.grid = geom3.grid(nx, ny, nz);
  cfg.block_threads = geom3.block_threads();

  launch_functional(arch, cfg, [&](BlockContext& blk) {
    const int smem_elems = warps * std::max(1, n_off) * p * kWarpSize;
    Smem<T> published = blk.alloc_smem<T>(smem_elems);
    auto smem_base = [&](int warp, int slot, int i) {
      return ((warp * std::max(1, n_off) + slot) * p + i) * kWarpSize;
    };

    const Index col0 = geom.lane0_col(blk.id().x);
    const Index row0 = static_cast<Index>(blk.id().y) * p + dy_min;
    const Index z_first = static_cast<Index>(blk.id().z) * vp - rz;

    std::vector<Reg<T>> center_sum(static_cast<std::size_t>(warps * p));

    for (int w = 0; w < warps; ++w) {
      WarpContext& wc = blk.warp(w);
      Index pz = z_first + w;
      pz = pz < 0 ? 0 : (pz >= nz ? nz - 1 : pz);
      const GridView2D<const T> plane = in.slice(pz);

      std::vector<Reg<T>> rows(static_cast<std::size_t>(geom.c()));
      Reg<Index> col = wc.clamp(wc.iota<Index>(col0, 1), Index{0}, nx - 1);
      for (int r = 0; r < geom.c(); ++r) {
        Index y = row0 + r;
        y = y < 0 ? 0 : (y >= ny ? ny - 1 : y);
        rows[static_cast<std::size_t>(r)] =
            wc.load_global(plane.data(), wc.affine(col, 1, y * plane.pitch()));
      }

      for (int i = 0; i < p; ++i) {
        Reg<T> s0 = wc.uniform(T{});
        if (center_pass != nullptr) {
          for (std::size_t ci = 0; ci < center_pass->columns.size(); ++ci) {
            if (ci > 0) s0 = wc.shfl_up(kFullMask, s0, 1);
            for (const core::ColumnTap<T>& tap : center_pass->columns[ci]) {
              s0 = wc.mad(rows[static_cast<std::size_t>(i + tap.dy - dy_min)], tap.coeff,
                          s0);
            }
          }
        }
        center_sum[static_cast<std::size_t>(w * p + i)] = s0;

        for (int op = 0; op < n_off; ++op) {
          const core::ColumnPass<T>& pass = off_passes[static_cast<std::size_t>(op)];
          Reg<T> sum = wc.uniform(T{});
          for (std::size_t ci = 0; ci < pass.columns.size(); ++ci) {
            if (ci > 0) sum = wc.shfl_up(kFullMask, sum, 1);
            for (const core::ColumnTap<T>& tap : pass.columns[ci]) {
              sum = wc.mad(rows[static_cast<std::size_t>(i + tap.dy - dy_min)], tap.coeff,
                           sum);
            }
          }
          wc.store_shared(published, wc.iota<int>(smem_base(w, op, i), 1), sum);
        }
      }
    }
    blk.sync();

    for (int w = rz; w < warps - rz; ++w) {
      WarpContext& wc = blk.warp(w);
      const Index pz = z_first + w;
      if (pz < 0 || pz >= nz) continue;

      T* plane_out = out.data() + pz * ny * nx;
      const Reg<Index> out_x = wc.affine(wc.iota<Index>(0, 1), 1, col0 - anchor);
      Pred ok = wc.pred_and(wc.cmp_ge(wc.lane_id(), geom.span), wc.cmp_lt(out_x, nx));
      for (int i = 0; i < p; ++i) {
        const Index oy = static_cast<Index>(blk.id().y) * p + i;
        if (oy >= ny) break;
        Reg<T> sum = center_sum[static_cast<std::size_t>(w * p + i)];
        for (int op = 0; op < n_off; ++op) {
          const core::ColumnPass<T>& pass = off_passes[static_cast<std::size_t>(op)];
          const int producer = w + pass.dz;
          const int deficit = anchor - pass.dx_max;
          Reg<int> sidx = wc.add(wc.lane_id(), smem_base(producer, op, i) - deficit);
          sidx = wc.clamp(sidx, smem_base(producer, op, i),
                          smem_base(producer, op, i) + kWarpSize - 1);
          sum = wc.add(sum, wc.load_shared(published, sidx));
        }
        wc.store_global(plane_out, wc.affine(out_x, 1, oy * nx), sum, &ok);
      }
    }
  });
}

/// Seed-style GEMM: heap-allocated accumulator rows, same systolic broadcast
/// chain as core::gemm_ssam.
template <typename T>
void gemm(const sim::ArchSpec& arch, const GridView2D<const T>& a,
          const GridView2D<const T>& b, GridView2D<T> c, int p = 4) {
  const Index m = a.height();
  const Index k = a.width();
  const Index n = b.width();
  constexpr int kBlockThreads = 128;
  const int warps = kBlockThreads / kWarpSize;

  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(ceil_div(n, kWarpSize)),
                  static_cast<int>(ceil_div(m, static_cast<long long>(warps) * p)), 1};
  cfg.block_threads = kBlockThreads;

  launch_functional(arch, cfg, [&, m, k, n, warps, p](BlockContext& blk) {
    for (int w = 0; w < warps; ++w) {
      WarpContext& wc = blk.warp(w);
      const Index j0 = static_cast<Index>(blk.id().x) * kWarpSize;
      const Index i0 = (static_cast<Index>(blk.id().y) * warps + w) * p;
      if (j0 >= n || i0 >= m) continue;
      Pred col_ok = wc.cmp_lt(wc.iota<Index>(j0, 1), n);

      std::vector<Reg<T>> acc(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) acc[static_cast<std::size_t>(r)] = wc.uniform(T{});

      for (Index kk = 0; kk < k; kk += kWarpSize) {
        const int steps = static_cast<int>(std::min<Index>(kWarpSize, k - kk));
        std::vector<Reg<T>> a_vec(static_cast<std::size_t>(p));
        Pred k_ok = wc.cmp_lt(wc.iota<Index>(kk, 1), k);
        for (int r = 0; r < p; ++r) {
          const Index row = std::min<Index>(i0 + r, m - 1);
          a_vec[static_cast<std::size_t>(r)] =
              wc.load_global(a.data(), wc.iota<Index>(row * a.pitch() + kk, 1), &k_ok);
        }
        for (int s = 0; s < steps; ++s) {
          const Reg<T> b_row =
              wc.load_global(b.data(), wc.iota<Index>((kk + s) * b.pitch() + j0, 1), &col_ok);
          for (int r = 0; r < p; ++r) {
            const Reg<T> a_bc = wc.shfl_idx(kFullMask, a_vec[static_cast<std::size_t>(r)], s);
            acc[static_cast<std::size_t>(r)] =
                wc.mad(b_row, a_bc, acc[static_cast<std::size_t>(r)]);
          }
        }
      }
      for (int r = 0; r < p; ++r) {
        const Index row = i0 + r;
        if (row >= m) break;
        wc.store_global(c.data(), wc.iota<Index>(row * c.pitch() + j0, 1),
                        acc[static_cast<std::size_t>(r)], &col_ok);
      }
    }
  });
}

/// Seed-style Kogge-Stone warp scan.
template <typename T>
[[nodiscard]] Reg<T> warp_scan(WarpContext& wc, Reg<T> v) {
  for (int d = 1; d < kWarpSize; d <<= 1) {
    const Reg<T> shifted = wc.shfl_up(kFullMask, v, d);
    const Pred gate = wc.cmp_ge(wc.lane_id(), d);
    v = wc.select(gate, wc.add(v, shifted), v);
  }
  return v;
}

/// Seed-style hierarchical inclusive scan (same pass structure as
/// core::scan_inclusive, heap state per block).
template <typename T>
void scan(const sim::ArchSpec& arch, std::span<const T> in, std::span<T> out) {
  const Index n = static_cast<Index>(in.size());
  constexpr int kBlockThreads = 256;
  const int warps = kBlockThreads / kWarpSize;
  const long long blocks = ceil_div(n, kBlockThreads);

  std::vector<T> block_sums(static_cast<std::size_t>(blocks));
  sim::LaunchConfig cfg;
  cfg.grid = Dim3{static_cast<int>(blocks), 1, 1};
  cfg.block_threads = kBlockThreads;

  const T* src = in.data();
  T* dst = out.data();
  T* sums = block_sums.data();
  launch_functional(arch, cfg, [&, src, dst, sums, n, warps](BlockContext& blk) {
    Smem<T> warp_totals = blk.alloc_smem<T>(warps);
    std::vector<Reg<T>> scanned(static_cast<std::size_t>(warps));
    for (int w = 0; w < warps; ++w) {
      WarpContext& wc = blk.warp(w);
      const Index base = static_cast<Index>(blk.id().x) * kBlockThreads +
                         static_cast<Index>(w) * kWarpSize;
      const Reg<Index> idx = wc.iota<Index>(base, 1);
      Pred active = wc.cmp_lt(idx, n);
      Reg<T> v = wc.load_global(src, idx, &active);
      v = warp_scan(wc, v);
      scanned[static_cast<std::size_t>(w)] = v;
      const Reg<T> total = wc.shfl_idx(kFullMask, v, kWarpSize - 1);
      Pred lane0 = wc.cmp_lt(wc.lane_id(), 1);
      wc.store_shared(warp_totals, wc.uniform(w), total, &lane0);
    }
    blk.sync();
    for (int w = 0; w < warps; ++w) {
      WarpContext& wc = blk.warp(w);
      Reg<T> offset = wc.uniform(T{});
      for (int pw = 0; pw < w; ++pw) {
        offset = wc.add(offset, wc.load_shared_broadcast(warp_totals, pw));
      }
      Reg<T> v = wc.add(scanned[static_cast<std::size_t>(w)], offset);
      const Index base = static_cast<Index>(blk.id().x) * kBlockThreads +
                         static_cast<Index>(w) * kWarpSize;
      const Reg<Index> idx = wc.iota<Index>(base, 1);
      Pred active = wc.cmp_lt(idx, n);
      wc.store_global(dst, idx, v, &active);
      if (w == warps - 1) {
        Pred last = wc.cmp_ge(wc.lane_id(), kWarpSize - 1);
        wc.store_global(sums, wc.uniform(static_cast<Index>(blk.id().x)),
                        wc.shfl_idx(kFullMask, v, kWarpSize - 1), &last);
      }
    }
  });

  if (blocks > 1) {
    std::vector<T> scanned_sums(block_sums.size());
    scan<T>(arch, {block_sums.data(), block_sums.size()},
            {scanned_sums.data(), scanned_sums.size()});
    const T* offs = scanned_sums.data();
    launch_functional(arch, cfg, [&, offs, dst, n](BlockContext& blk) {
      if (blk.id().x == 0) return;
      for (int w = 0; w < blk.warp_count(); ++w) {
        WarpContext& wc = blk.warp(w);
        const Reg<T> off =
            wc.load_global(offs, wc.uniform(static_cast<Index>(blk.id().x - 1)));
        const Index base = static_cast<Index>(blk.id().x) * kBlockThreads +
                           static_cast<Index>(w) * kWarpSize;
        const Reg<Index> idx = wc.iota<Index>(base, 1);
        Pred active = wc.cmp_lt(idx, n);
        Reg<T> v = wc.load_global(dst, idx, &active);
        v = wc.add(v, off);
        wc.store_global(dst, idx, v, &active);
      }
    });
  }
}

}  // namespace legacy

// ===========================================================================
// Measurement harness
// ===========================================================================

struct KernelResult {
  std::string name;
  long long blocks = 0;
  double cells = 0.0;
  double flops_per_cell = 0.0;
  double seconds = 0.0;     ///< best-of per-rep wall time, current path
  double legacy_seconds = 0.0;  ///< 0 when no legacy replica exists
  double serial_seconds = 0.0;  ///< pipeline only: sum-of-stages serial time
  int host_threads = 0;         ///< per-row override (pipeline runs wider)

  // persistent_vs_relaunch scenario only.
  int steps = 0;                    ///< plain time steps advanced per rep
  int tiles = 0;                    ///< resident tiles of the persistent run
  double relaunch_seconds = 0.0;    ///< ghost-zone temporal relaunch (t=4)
  double same_t_seconds = 0.0;      ///< persistent at the relaunch path's t
  double relaunch_t1_seconds = 0.0; ///< plain per-step relaunch reference
  int bit_identical = -1;           ///< 1 when every parity memcmp held

  // sharded_vs_single scenario only.
  int shard_devices = 0;            ///< virtual devices of the sharded run
  double single_seconds = 0.0;      ///< same run on one pool (the baseline)

  // chain_fused_vs_staged scenario only.
  double staged_seconds = 0.0;      ///< one launch per stage (the reference)

  // autotuned_vs_default scenario only.
  double default_seconds = 0.0;     ///< default schedule (run_job, no hints)
  double best_seconds = 0.0;        ///< best hand-tuned schedule of the sweep
  int tune_measurements = 0;        ///< measurements spent by the cold tune
  int warm_zero_measure = -1;       ///< 1 when the warm cache hit measured nothing

  [[nodiscard]] double blocks_per_sec() const {
    return static_cast<double>(blocks) / seconds;
  }
  [[nodiscard]] double cells_per_sec() const { return cells / seconds; }
  [[nodiscard]] double lane_ops_per_sec() const {
    return cells * flops_per_cell / seconds;
  }
  [[nodiscard]] double speedup_vs_legacy() const {
    return legacy_seconds > 0.0 ? legacy_seconds / seconds : 0.0;
  }
  [[nodiscard]] double overlap_speedup() const {
    return serial_seconds > 0.0 ? serial_seconds / seconds : 0.0;
  }
  [[nodiscard]] double steps_per_sec() const {
    return steps > 0 ? steps / seconds : 0.0;
  }
  [[nodiscard]] double persistent_speedup() const {
    return relaunch_seconds > 0.0 ? relaunch_seconds / seconds : 0.0;
  }
  [[nodiscard]] double same_t_speedup() const {
    return same_t_seconds > 0.0 ? relaunch_seconds / same_t_seconds : 0.0;
  }
  [[nodiscard]] double sharded_speedup() const {
    return single_seconds > 0.0 ? single_seconds / seconds : 0.0;
  }
  [[nodiscard]] double fused_speedup() const {
    return staged_seconds > 0.0 ? staged_seconds / seconds : 0.0;
  }
  /// >= 1: the tuned schedule is at least as fast as the default one.
  [[nodiscard]] double autotuned_vs_default() const {
    return default_seconds > 0.0 ? default_seconds / seconds : 0.0;
  }
  /// <= 1 by construction (best is the sweep winner); ~0.9 means the tuner
  /// landed within 10% of the best hand-tuned schedule.
  [[nodiscard]] double autotuned_vs_best() const {
    return best_seconds > 0.0 ? best_seconds / seconds : 0.0;
  }
};

/// Runs fn repeatedly and returns the best per-rep wall time (seconds).
template <typename Fn>
double best_time(Fn&& fn, int reps = 3) {
  double best = 1e100;
  fn();  // warm-up
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Times two alternatives with interleaved reps (A B A B ...) so host load
/// drift hits both equally, and returns their best per-rep times. The
/// speedup quoted from these is robust against slow monotone noise.
template <typename FnA, typename FnB>
std::pair<double, double> best_time_interleaved(FnA&& a, FnB&& b, int reps = 5) {
  double best_a = 1e100;
  double best_b = 1e100;
  a();  // warm-up both
  b();
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    a();
    auto t1 = std::chrono::steady_clock::now();
    b();
    auto t2 = std::chrono::steady_clock::now();
    best_a = std::min(best_a, std::chrono::duration<double>(t1 - t0).count());
    best_b = std::min(best_b, std::chrono::duration<double>(t2 - t1).count());
  }
  return {best_a, best_b};
}

void write_json(const std::vector<KernelResult>& results, int kernel_threads,
                int overlap_threads, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"sim_throughput\",\n  \"mode\": \"functional\",\n");
  std::fprintf(f, "  \"simd_backend\": \"%s\",\n", ssam::sim::simd::kBackendName);
  // Per-kernel numbers are pinned to one worker for regression stability;
  // the pipeline overlap scenario runs at overlap_host_threads workers.
  std::fprintf(f, "  \"host_threads\": %d,\n  \"overlap_host_threads\": %d,\n  \"kernels\": [\n",
               kernel_threads, overlap_threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"blocks\": %lld, \"seconds\": %.6f, "
                 "\"blocks_per_sec\": %.1f, \"cells_per_sec\": %.1f, "
                 "\"lane_ops_per_sec\": %.1f",
                 r.name.c_str(), r.blocks, r.seconds, r.blocks_per_sec(),
                 r.cells_per_sec(), r.lane_ops_per_sec());
    if (r.host_threads > 0) {
      std::fprintf(f, ", \"host_threads\": %d", r.host_threads);
    }
    if (r.legacy_seconds > 0.0) {
      std::fprintf(f,
                   ", \"legacy_seconds\": %.6f, \"legacy_blocks_per_sec\": %.1f, "
                   "\"speedup_vs_legacy\": %.2f",
                   r.legacy_seconds, static_cast<double>(r.blocks) / r.legacy_seconds,
                   r.speedup_vs_legacy());
    }
    if (r.serial_seconds > 0.0) {
      std::fprintf(f, ", \"serial_seconds\": %.6f, \"overlap_speedup\": %.2f",
                   r.serial_seconds, r.overlap_speedup());
    }
    if (r.steps > 0) {
      std::fprintf(f, ", \"steps\": %d, \"steps_per_sec\": %.2f, \"tiles\": %d", r.steps,
                   r.steps_per_sec(), r.tiles);
      if (r.relaunch_seconds > 0.0) {
        std::fprintf(f,
                     ", \"relaunch_seconds\": %.6f, \"relaunch_steps_per_sec\": %.2f, "
                     "\"persistent_speedup\": %.2f",
                     r.relaunch_seconds, r.steps / r.relaunch_seconds,
                     r.persistent_speedup());
      }
      if (r.same_t_seconds > 0.0) {
        std::fprintf(f, ", \"same_t_seconds\": %.6f, \"same_t_speedup\": %.2f",
                     r.same_t_seconds, r.same_t_speedup());
      }
      if (r.relaunch_t1_seconds > 0.0) {
        std::fprintf(f, ", \"relaunch_t1_seconds\": %.6f", r.relaunch_t1_seconds);
      }
    }
    if (r.shard_devices > 0) {
      std::fprintf(f,
                   ", \"shard_devices\": %d, \"single_seconds\": %.6f, "
                   "\"sharded_speedup\": %.2f",
                   r.shard_devices, r.single_seconds, r.sharded_speedup());
    }
    if (r.default_seconds > 0.0) {
      std::fprintf(f,
                   ", \"default_seconds\": %.6f, \"best_seconds\": %.6f, "
                   "\"autotuned_vs_default\": %.2f, \"autotuned_vs_best\": %.2f, "
                   "\"tune_measurements\": %d, "
                   "\"warm_cache_zero_measurements\": %s",
                   r.default_seconds, r.best_seconds, r.autotuned_vs_default(),
                   r.autotuned_vs_best(), r.tune_measurements,
                   r.warm_zero_measure != 0 ? "true" : "false");
    }
    if (r.staged_seconds > 0.0) {
      std::fprintf(f,
                   ", \"staged_seconds\": %.6f, \"staged_steps_per_sec\": %.2f, "
                   "\"fused_speedup\": %.2f",
                   r.staged_seconds, r.steps / r.staged_seconds, r.fused_speedup());
    }
    if (r.bit_identical >= 0) {
      std::fprintf(f, ", \"bit_identical\": %s", r.bit_identical != 0 ? "true" : "false");
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

// ---------------------------------------------------------------------------
// persistent_vs_relaunch: same 32 plain time steps of the star-1 stencil on
// a 2048^2 grid under both iteration models, at the current pool size.
//  * relaunch   — the per-step path for temporal stencils: one launch of the
//    t=4 ghost-zone kernel per fused sweep, full global-array round trip
//    between sweeps (headline baseline, `relaunch_seconds`).
//  * persistent — resident tiles with exact per-step halo exchange (t=1,
//    `seconds`), plus the same-t=4 configuration whose output must be
//    bit-identical to the relaunch path (`same_t_seconds`).
// A plain per-step relaunch reference (`relaunch_t1_seconds`) is recorded
// for completeness, and the exact-exchange persistent result is verified
// bit-for-bit against it. Returns bit_identical = 0 on any mismatch (the
// caller exits nonzero, failing the CI gate).
KernelResult persistent_vs_relaunch(const sim::ArchSpec& arch, const char* name) {
  using namespace ssam;
  const Index n = 2048;
  const int t = 4;
  const int sweeps = 8;  // 32 plain steps per rep
  const core::StencilShape<float> shape = core::star2d<float>(1);
  const core::SystolicPlan<float> plan = core::build_plan(shape.taps);
  Grid2D<float> src(n, n);
  fill_random(src, 21);

  core::TemporalSsamOptions topt;
  topt.t = t;
  Grid2D<float> ra = src, rb(n, n);
  auto relaunch_t4 = [&] {
    for (int s = 0; s < sweeps; ++s) {
      (void)core::stencil2d_ssam_temporal<float>(arch, ra.cview(), plan, rb.view(), topt);
      std::swap(ra, rb);
    }
  };
  Grid2D<float> pa = src, pb(n, n);
  core::PersistentOptions popt;
  popt.policy = core::IterationPolicy::kPersistent;
  core::PersistentRunStats pstats;
  auto persistent_t1 = [&] {
    pstats = core::iterate_stencil2d_persistent<float>(arch, pa, pb, shape, t * sweeps,
                                                       popt);
  };

  KernelResult r;
  r.name = name;
  r.steps = t * sweeps;
  r.cells = static_cast<double>(n) * n * r.steps;
  r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
  const auto [pers, relaunch] = best_time_interleaved(persistent_t1, relaunch_t4, 5);
  r.seconds = pers;
  r.relaunch_seconds = relaunch;
  r.tiles = pstats.tiles;
  // Blocks of the equivalent plain sweeps, so blocks_per_sec tracks the
  // persistent path's throughput in the regression gate.
  const core::StencilOptions plain_opt;
  const auto s1 = core::detail::stencil2d_setup(src.cview(), plan, plain_opt);
  r.blocks = static_cast<long long>(s1.cfg.grid.count()) * r.steps;

  // Same-t persistent run: must match the relaunch output bit for bit.
  core::PersistentOptions popt4 = popt;
  popt4.t = t;
  Grid2D<float> qa = src, qb(n, n);
  r.same_t_seconds = best_time(
      [&] {
        (void)core::iterate_stencil2d_persistent<float>(arch, qa, qb, shape, sweeps,
                                                        popt4);
      },
      3);

  // Plain per-step relaunch reference; the exact-exchange persistent result
  // must match it bit for bit.
  Grid2D<float> ta = src, tb(n, n);
  r.relaunch_t1_seconds = best_time(
      [&] {
        for (int s = 0; s < t * sweeps; ++s) {
          (void)core::stencil2d_ssam<float>(arch, ta.cview(), plan, tb.view(), plain_opt);
          std::swap(ta, tb);
        }
      },
      3);

  // Parity checks on fresh single runs from the same source state.
  const std::size_t bytes = static_cast<std::size_t>(src.size()) * sizeof(float);
  Grid2D<float> ca = src, cb(n, n), da = src, db(n, n);
  for (int s = 0; s < sweeps; ++s) {
    (void)core::stencil2d_ssam_temporal<float>(arch, ca.cview(), plan, cb.view(), topt);
    std::swap(ca, cb);
  }
  (void)core::iterate_stencil2d_persistent<float>(arch, da, db, shape, sweeps, popt4);
  const bool same_t_ok = 0 == std::memcmp(ca.data(), da.data(), bytes);

  Grid2D<float> ea = src, eb(n, n), fa = src, fb(n, n);
  for (int s = 0; s < t * sweeps; ++s) {
    (void)core::stencil2d_ssam<float>(arch, ea.cview(), plan, eb.view(), plain_opt);
    std::swap(ea, eb);
  }
  (void)core::iterate_stencil2d_persistent<float>(arch, fa, fb, shape, t * sweeps, popt);
  const bool exact_ok = 0 == std::memcmp(ea.data(), fa.data(), bytes);
  r.bit_identical = (same_t_ok && exact_ok) ? 1 : 0;

  std::printf(
      "%-24s %10.3f ms  (relaunch t4 %10.3f ms, speedup %.2fx; same-t %.2fx, "
      "bit-identical %s; %d tiles, %d workers)\n",
      r.name.c_str(), r.seconds * 1e3, r.relaunch_seconds * 1e3, r.persistent_speedup(),
      r.same_t_speedup(), r.bit_identical != 0 ? "yes" : "NO", r.tiles,
      ThreadPool::global().size());
  return r;
}

// ---------------------------------------------------------------------------
// sharded_vs_single: the same 32 plain steps of the star-1 stencil on a
// 2048^2 grid, run by the persistent engine on one pool ("single",
// `single_seconds`) and sharded across a virtual device group of `devices`
// pool slices with peer halo channels at the seams (`seconds`). On a
// many-core host the shards advance concurrently; on the 1-core baseline
// box the number worth recording is that sharding costs ~nothing — and the
// number the CI gate asserts is the parity memcmp: sharded output must be
// bit-identical to the single-device run (bit_identical = 0 fails the
// bench's exit code).
KernelResult sharded_vs_single(const sim::ArchSpec& arch, int devices, const char* name) {
  using namespace ssam;
  const Index n = 2048;
  const int steps = 32;
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> src(n, n);
  fill_random(src, 23);

  core::PersistentOptions single_opt;
  single_opt.policy = core::IterationPolicy::kPersistent;
  core::PersistentOptions shard_opt = single_opt;
  shard_opt.shard = core::ShardPolicy::sharded(devices);

  Grid2D<float> sa = src, sb(n, n), ha = src, hb(n, n);
  core::PersistentRunStats sstats, hstats;
  auto single_run = [&] {
    sstats = core::iterate_stencil2d_persistent<float>(arch, sa, sb, shape, steps,
                                                       single_opt);
  };
  auto sharded_run = [&] {
    hstats = core::iterate_stencil2d_persistent<float>(arch, ha, hb, shape, steps,
                                                       shard_opt);
  };

  KernelResult r;
  r.name = name;
  r.steps = steps;
  r.cells = static_cast<double>(n) * n * steps;
  r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
  const auto [sharded_t, single_t] = best_time_interleaved(sharded_run, single_run, 3);
  r.seconds = sharded_t;
  r.single_seconds = single_t;
  r.tiles = hstats.tiles;
  r.shard_devices = hstats.devices;
  const core::StencilOptions plain_opt;
  const auto s1 = core::detail::stencil2d_setup(src.cview(), core::build_plan(shape.taps),
                                                plain_opt);
  r.blocks = static_cast<long long>(s1.cfg.grid.count()) * r.steps;

  // Parity on fresh runs from the same source state, at every policy.
  const std::size_t bytes = static_cast<std::size_t>(src.size()) * sizeof(float);
  Grid2D<float> pa = src, pb(n, n), qa = src, qb(n, n), va = src, vb(n, n);
  (void)core::iterate_stencil2d_persistent<float>(arch, pa, pb, shape, steps, single_opt);
  (void)core::iterate_stencil2d_persistent<float>(arch, qa, qb, shape, steps, shard_opt);
  core::PersistentOptions relaunch_shard = shard_opt;
  relaunch_shard.policy = core::IterationPolicy::kRelaunch;
  (void)core::iterate_stencil2d_persistent<float>(arch, va, vb, shape, steps,
                                                  relaunch_shard);
  const bool persistent_ok = 0 == std::memcmp(pa.data(), qa.data(), bytes);
  const bool relaunch_ok = 0 == std::memcmp(pa.data(), va.data(), bytes);
  r.bit_identical = (persistent_ok && relaunch_ok) ? 1 : 0;

  std::printf(
      "%-24s %10.3f ms  (single %10.3f ms, sharded %.2fx; %d devices, %d tiles, "
      "bit-identical %s)\n",
      r.name.c_str(), r.seconds * 1e3, r.single_seconds * 1e3, r.sharded_speedup(),
      r.shard_devices, r.tiles, r.bit_identical != 0 ? "yes" : "NO");
  return r;
}

// ---------------------------------------------------------------------------
// chain_fused_vs_staged: a depth-k chain of distinct star-1 stencil stages
// over a 4096x3072 grid — large enough that the staged reference's per-stage
// global round-trips are real DRAM traffic. The fused path (core/chain.hpp)
// compiles the whole
// chain into ONE persistent launch — stage N's tile output feeds stage N+1
// in-resident through the epoch-counted halo channels (`seconds`); the
// staged reference runs one launch per stage, round-tripping every
// intermediate through a global-sized scratch array (`staged_seconds`).
// Both paths share one warm workspace so neither pays allocation churn, and
// the parity memcmp gates the bench's exit code: fused must be
// bit-identical to staged at every depth.
KernelResult chain_fused_vs_staged(const sim::ArchSpec& arch, int depth,
                                   sim::PersistentWorkspace& ws, const char* name) {
  using namespace ssam;
  const Index w = 4096;
  const Index h = 3072;
  const core::StencilShape<float> shape = core::star2d<float>(1);
  std::vector<core::ChainStage<float>> stages;
  stages.reserve(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    core::StencilShape<float> s = shape;
    // Distinct per-stage weights so no stage is a repeat of its neighbour.
    for (auto& tap : s.taps) tap.coeff *= 1.0f + 0.01f * static_cast<float>(i);
    stages.push_back(core::ChainStage<float>::stencil(std::move(s)));
  }
  Grid2D<float> src(w, h);
  fill_random(src, 29);

  Grid2D<float> staged_out(w, h), fused_out(w, h);
  core::PersistentOptions staged_opt;
  staged_opt.policy = core::IterationPolicy::kRelaunch;
  core::PersistentOptions fused_opt;
  fused_opt.policy = core::IterationPolicy::kPersistent;
  core::PersistentRunStats fstats;
  auto staged_run = [&] {
    (void)core::run_chain2d<float>(arch, src, staged_out, stages, staged_opt, &ws);
  };
  auto fused_run = [&] {
    fstats = core::run_chain2d<float>(arch, src, fused_out, stages, fused_opt, &ws);
  };

  KernelResult r;
  r.name = name;
  r.steps = depth;  // one "step" per stage of the chain
  r.cells = static_cast<double>(w) * h * depth;
  r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
  // Each path is timed in its own contiguous best-of block rather than
  // interleaved: the fused path's advantage is band-buffer cache residency,
  // and alternating with the staged path — whose ping-pong scratch streams
  // ~2x the grid through the cache every rep — would measure a cold-cache
  // state no repeated caller of either path actually sees.
  r.staged_seconds = best_time(staged_run, 7);
  r.seconds = best_time(fused_run, 7);
  r.tiles = fstats.tiles;
  const core::StencilOptions plain_opt;
  const auto s1 = core::detail::stencil2d_setup(src.cview(), core::build_plan(shape.taps),
                                                plain_opt);
  r.blocks = static_cast<long long>(s1.cfg.grid.count()) * depth;
  r.bit_identical =
      0 == std::memcmp(staged_out.data(), fused_out.data(),
                       static_cast<std::size_t>(src.size()) * sizeof(float))
          ? 1
          : 0;

  std::printf(
      "%-24s %10.3f ms  (staged %10.3f ms, fused %.2fx; depth %d, %d tiles, "
      "bit-identical %s)\n",
      r.name.c_str(), r.seconds * 1e3, r.staged_seconds * 1e3, r.fused_speedup(), depth,
      r.tiles, r.bit_identical != 0 ? "yes" : "NO");
  return r;
}

// ---------------------------------------------------------------------------
// autotuned_vs_default: the autotuner (core/autotune.hpp) against the default
// schedule AND the best hand-tuned one, on 32 plain steps of the star-1
// stencil over a 1024^2 grid.
//  * `default_seconds` — run_job with untouched hints (kAuto policy, auto
//    tiles, no sharding): what every caller gets for free.
//  * `best_seconds` — every schedule in the tuner's candidate space measured
//    exhaustively on the full workload; the sweep winner is the "best
//    hand-tuned" reference the acceptance bar is phrased against.
//  * `seconds` — the schedule a cold tune picks, run on the same workload.
// The JSON reports autotuned_vs_default (>= ~1: tuning never hurts; the
// tuner always measures the default schedule too, so it can only lose to
// timer noise) and autotuned_vs_best (>= ~0.9: within 10% of the sweep
// winner). The cold tune runs against a scratch cache file — never the
// developer's ~/.cache — and the immediate re-resolve must be a cache hit
// with ZERO additional measurements (`warm_cache_zero_measurements`, gated
// like the parity memcmps). bit_identical asserts the tuned schedule's
// output is byte-for-byte the default schedule's.
KernelResult autotuned_vs_default_row(const sim::ArchSpec& arch, const char* name) {
  using namespace ssam;
  const Index n = 1024;
  const int steps = 32;
  const core::StencilShape<float> shape = core::star2d<float>(1);
  Grid2D<float> src(n, n);
  fill_random(src, 31);

  core::TunerOptions topt;
  topt.cache_path =
      (std::filesystem::temp_directory_path() / "ssam_bench_tune.json").string();
  std::remove(topt.cache_path.c_str());
  core::AutoTuner tuner(topt);

  Grid2D<float> pa = src, pb(n, n);
  const core::SimJob probe = core::SimJob::stencil2d(pa, pb, shape, steps);

  const core::TuneResult cold = tuner.resolve(arch, probe);
  const int tune_measurements = static_cast<int>(tuner.stats().measurements);
  const core::TuneResult warm = tuner.resolve(arch, probe);
  const bool warm_ok =
      warm.origin == core::TuneOrigin::kCacheHit &&
      tuner.stats().measurements == static_cast<std::uint64_t>(tune_measurements);

  // Every contender runs through the same engine knobs autotune_apply moves
  // (policy, tiles, sharding) — nothing else differs between the runs.
  auto run_with = [&](const core::Schedule& s, Grid2D<float>& a, Grid2D<float>& b) {
    core::PersistentOptions p;
    p.policy = s.policy;
    p.tiles = s.tiles;
    if (s.shards > 1) p.shard = core::ShardPolicy::sharded(s.shards);
    (void)core::iterate_stencil2d_persistent<float>(arch, a, b, shape, steps, p);
  };

  // Tuned vs default, interleaved so host-load drift hits both equally.
  Grid2D<float> ta = src, tb(n, n), fa = src, fb(n, n);
  core::SimJob def_job = core::SimJob::stencil2d(fa, fb, shape, steps);
  const auto [tuned_t, default_t] = best_time_interleaved(
      [&] { run_with(cold.schedule, ta, tb); },
      [&] { (void)core::run_job(arch, def_job); }, 5);

  // The hand-tuned sweep: the tuner's whole candidate space, measured
  // exhaustively on the full workload (what a patient human would do).
  double best_seconds = 1e100;
  core::Schedule best_schedule;
  Grid2D<float> ca = src, cb(n, n);
  for (const core::Candidate& c :
       tuner.candidates(arch, probe, /*allow_shards=*/true)) {
    const double t = best_time([&] { run_with(c.schedule, ca, cb); }, 3);
    if (t < best_seconds) {
      best_seconds = t;
      best_schedule = c.schedule;
    }
  }

  KernelResult r;
  r.name = name;
  r.steps = steps;
  r.cells = static_cast<double>(n) * n * steps;
  r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
  r.seconds = tuned_t;
  r.default_seconds = default_t;
  r.best_seconds = best_seconds;
  r.tune_measurements = tune_measurements;
  r.warm_zero_measure = warm_ok ? 1 : 0;
  const core::StencilOptions plain_opt;
  const auto s1 = core::detail::stencil2d_setup(src.cview(), core::build_plan(shape.taps),
                                                plain_opt);
  r.blocks = static_cast<long long>(s1.cfg.grid.count()) * steps;

  // Bit-identity on fresh runs: the tuner only moves bit-safe knobs, so the
  // tuned output must be byte-for-byte the default one.
  Grid2D<float> xa = src, xb(n, n), ya = src, yb(n, n);
  core::SimJob xjob = core::SimJob::stencil2d(xa, xb, shape, steps);
  (void)core::run_job(arch, xjob);
  run_with(cold.schedule, ya, yb);
  r.bit_identical =
      0 == std::memcmp(xa.data(), ya.data(),
                       static_cast<std::size_t>(src.size()) * sizeof(float))
          ? 1
          : 0;
  if (!warm_ok) {
    std::fprintf(stderr, "FAIL: %s warm cache hit was not measurement-free\n", name);
  }

  std::printf(
      "%-24s %10.3f ms  (default %10.3f ms = %.2fx, best [%s] %10.3f ms = %.2fx; "
      "%d cold measurements, warm hit measured %s, bit-identical %s)\n",
      r.name.c_str(), r.seconds * 1e3, r.default_seconds * 1e3, r.autotuned_vs_default(),
      best_schedule.describe().c_str(), r.best_seconds * 1e3, r.autotuned_vs_best(),
      r.tune_measurements, warm_ok ? "nothing" : "SOMETHING",
      r.bit_identical != 0 ? "yes" : "NO");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_sim_throughput.json";
  const auto& arch = sim::tesla_v100();
  std::vector<KernelResult> results;

  std::printf("SIMD lane backend: %s\n", sim::simd::kBackendName);

  // Per-kernel throughput is pinned to a single worker so the committed
  // numbers stay comparable across machines and across PRs regardless of
  // SSAM_THREADS or core count; the pipeline overlap scenario below widens
  // the pool to >= 4 workers (its point is cross-stream overlap).
  ThreadPool::reset_global(1);
  const int kernel_threads = ThreadPool::global().size();

  const Index w2d = 2048, h2d = 2048;
  Grid2D<float> in2d(w2d, h2d);
  fill_random(in2d, 1);
  Grid2D<float> out2d(w2d, h2d);

  // --- conv2d 5x5 (with legacy comparison) ---------------------------------
  {
    const int m = 5, n = 5;
    std::vector<float> weights(static_cast<std::size_t>(m * n), 0.04f);
    KernelResult r;
    r.name = "conv2d_5x5";
    r.cells = static_cast<double>(w2d) * static_cast<double>(h2d);
    r.flops_per_cell = 2.0 * m * n;
    sim::KernelStats stats;
    const auto [cur, leg] = best_time_interleaved(
        [&] {
          stats = core::conv2d_ssam<float>(arch, in2d.cview(), weights, m, n, out2d.view());
        },
        [&] { legacy::conv2d<float>(arch, in2d.cview(), weights, m, n, out2d.view()); });
    r.seconds = cur;
    r.legacy_seconds = leg;
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms  (legacy %10.3f ms, speedup %.2fx)\n", r.name.c_str(),
                r.seconds * 1e3, r.legacy_seconds * 1e3, r.speedup_vs_legacy());
    results.push_back(r);
  }

  // --- stencil2d star-1 (with legacy comparison) ---------------------------
  {
    const core::StencilShape<float> shape = core::star2d<float>(1);
    const core::SystolicPlan<float> plan = core::build_plan(shape.taps);
    KernelResult r;
    r.name = "stencil2d_star1";
    r.cells = static_cast<double>(w2d) * static_cast<double>(h2d);
    r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
    sim::KernelStats stats;
    const auto [cur, leg] = best_time_interleaved(
        [&] {
          stats = core::stencil2d_ssam<float>(arch, in2d.cview(), plan, out2d.view());
        },
        [&] { legacy::stencil2d<float>(arch, in2d.cview(), plan, out2d.view()); });
    r.seconds = cur;
    r.legacy_seconds = leg;
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms  (legacy %10.3f ms, speedup %.2fx)\n", r.name.c_str(),
                r.seconds * 1e3, r.legacy_seconds * 1e3, r.speedup_vs_legacy());
    results.push_back(r);
  }

  // --- temporal stencil, t=4 (with legacy comparison) -----------------------
  {
    const core::StencilShape<float> shape = core::star2d<float>(1);
    const core::SystolicPlan<float> plan = core::build_plan(shape.taps);
    core::TemporalSsamOptions opt;
    opt.t = 4;
    KernelResult r;
    r.name = "stencil2d_temporal_t4";
    r.cells = static_cast<double>(w2d) * static_cast<double>(h2d) * opt.t;
    r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
    sim::KernelStats stats;
    const auto [cur, leg] = best_time_interleaved(
        [&] {
          stats = core::stencil2d_ssam_temporal<float>(arch, in2d.cview(), plan,
                                                       out2d.view(), opt);
        },
        [&] {
          legacy::stencil2d_temporal<float>(arch, in2d.cview(), plan, out2d.view(), opt.t,
                                            opt.p);
        });
    r.seconds = cur;
    r.legacy_seconds = leg;
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms  (legacy %10.3f ms, speedup %.2fx)\n", r.name.c_str(),
                r.seconds * 1e3, r.legacy_seconds * 1e3, r.speedup_vs_legacy());
    results.push_back(r);
  }

  // --- stencil3d star-1 (with legacy comparison) ----------------------------
  {
    const Index n3 = 192;
    Grid3D<float> in3d(n3, n3, n3);
    fill_random(in3d, 2);
    Grid3D<float> out3d(n3, n3, n3);
    const core::StencilShape<float> shape = core::star3d<float>(1);
    const core::SystolicPlan<float> plan = core::build_plan(shape.taps);
    KernelResult r;
    r.name = "stencil3d_star1";
    r.cells = static_cast<double>(n3) * n3 * n3;
    r.flops_per_cell = 2.0 * static_cast<double>(shape.taps.size()) - 1.0;
    sim::KernelStats stats;
    const auto [cur, leg] = best_time_interleaved(
        [&] {
          stats = core::stencil3d_ssam<float>(arch, in3d.cview(), plan, out3d.view());
        },
        [&] { legacy::stencil3d<float>(arch, in3d.cview(), plan, out3d.view()); });
    r.seconds = cur;
    r.legacy_seconds = leg;
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms  (legacy %10.3f ms, speedup %.2fx)\n", r.name.c_str(),
                r.seconds * 1e3, r.legacy_seconds * 1e3, r.speedup_vs_legacy());
    results.push_back(r);
  }

  // --- device-wide scan (with legacy comparison) ----------------------------
  {
    std::vector<float> in(static_cast<std::size_t>(4) << 20);
    SplitMix64 rng(3);
    for (auto& v : in) v = static_cast<float>(rng.next_in(-1.0, 1.0));
    std::vector<float> out(in.size());
    KernelResult r;
    r.name = "scan_4m";
    r.cells = static_cast<double>(in.size());
    r.flops_per_cell = 5.0;  // log2(warp) Kogge-Stone adds per element
    std::vector<sim::KernelStats> stats;
    const auto [cur, leg] = best_time_interleaved(
        [&] { stats = core::scan_inclusive<float>(arch, in, out); },
        [&] { legacy::scan<float>(arch, in, out); });
    r.seconds = cur;
    r.legacy_seconds = leg;
    for (const auto& s : stats) r.blocks += s.blocks_total;
    std::printf("%-24s %10.3f ms  (legacy %10.3f ms, speedup %.2fx)\n", r.name.c_str(),
                r.seconds * 1e3, r.legacy_seconds * 1e3, r.speedup_vs_legacy());
    results.push_back(r);
  }

  // --- gemm (with legacy comparison) ----------------------------------------
  {
    const Index n = 512;
    Grid2D<float> a(n, n), b(n, n), c(n, n);
    fill_random(a, 4);
    fill_random(b, 5);
    KernelResult r;
    r.name = "gemm_512";
    r.cells = static_cast<double>(n) * n;
    r.flops_per_cell = 2.0 * static_cast<double>(n);
    sim::KernelStats stats;
    const auto [cur, leg] = best_time_interleaved(
        [&] { stats = core::gemm_ssam<float>(arch, a.cview(), b.cview(), c.view()); },
        [&] { legacy::gemm<float>(arch, a.cview(), b.cview(), c.view()); });
    r.seconds = cur;
    r.legacy_seconds = leg;
    r.blocks = stats.blocks_total;
    std::printf("%-24s %10.3f ms  (legacy %10.3f ms, speedup %.2fx)\n", r.name.c_str(),
                r.seconds * 1e3, r.legacy_seconds * 1e3, r.speedup_vs_legacy());
    results.push_back(r);
  }

  // --- persistent iteration engine vs per-step relaunch, 1 worker -----------
  results.push_back(persistent_vs_relaunch(arch, "persistent_vs_relaunch_t4_1w"));

  // --- virtual multi-device sharding vs one pool, 2 and 4 devices -----------
  // The single baseline inside each row runs on the 1-worker global pool;
  // the sharded runs use the shared device groups (each device a slice of
  // the host). The parity memcmps gate the exit code.
  results.push_back(sharded_vs_single(arch, 2, "sharded_vs_single_d2"));
  results.push_back(sharded_vs_single(arch, 4, "sharded_vs_single_d4"));

  // --- multi-kernel pipeline: blur -> (sobel_x, sobel_y) over a batch -------
  // Serial path launches every stage back-to-back; the stream path runs each
  // image's chain on its own stream (the two Sobels fork onto a second
  // stream after an event), so independent stages and independent images
  // overlap across pool workers. The overlap scenario needs a pool: it runs
  // at >= 4 workers (honoring a larger SSAM_THREADS), while the per-kernel
  // numbers above stay pinned to one. Both counts land in the JSON.
  const int overlap_threads = std::max(4, ssam::hardware_concurrency());
  ThreadPool::reset_global(overlap_threads);
  {
    const Index np = 1024;
    const int kImages = 4;
    std::vector<float> gauss(25, 0.04f);
    const std::vector<float> sobel_x = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
    const std::vector<float> sobel_y = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
    std::vector<Grid2D<float>> img, blur, gx, gy;
    for (int i = 0; i < kImages; ++i) {
      img.emplace_back(np, np);
      fill_random(img.back(), 10 + i);
      blur.emplace_back(np, np);
      gx.emplace_back(np, np);
      gy.emplace_back(np, np);
    }

    long long pipeline_blocks = 0;
    auto serial_pass = [&] {
      pipeline_blocks = 0;
      for (int i = 0; i < kImages; ++i) {
        pipeline_blocks += core::conv2d_ssam<float>(arch, img[static_cast<std::size_t>(i)].cview(),
                                                    gauss, 5, 5,
                                                    blur[static_cast<std::size_t>(i)].view())
                               .blocks_total;
        pipeline_blocks += core::conv2d_ssam<float>(arch, blur[static_cast<std::size_t>(i)].cview(),
                                                    sobel_x, 3, 3,
                                                    gx[static_cast<std::size_t>(i)].view())
                               .blocks_total;
        pipeline_blocks += core::conv2d_ssam<float>(arch, blur[static_cast<std::size_t>(i)].cview(),
                                                    sobel_y, 3, 3,
                                                    gy[static_cast<std::size_t>(i)].view())
                               .blocks_total;
      }
    };
    auto stream_pass = [&] {
      std::vector<std::unique_ptr<sim::Stream>> main_streams, fork_streams;
      for (int i = 0; i < kImages; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        main_streams.push_back(std::make_unique<sim::Stream>());
        fork_streams.push_back(std::make_unique<sim::Stream>());
        sim::Stream& s1 = *main_streams.back();
        sim::Stream& s2 = *fork_streams.back();
        core::conv2d_ssam_async<float>(s1, arch, img[ui].cview(), gauss, 5, 5,
                                       blur[ui].view());
        const sim::Event blurred = s1.record();
        core::conv2d_ssam_async<float>(s1, arch, blur[ui].cview(), sobel_x, 3, 3,
                                       gx[ui].view());
        s2.wait(blurred);
        core::conv2d_ssam_async<float>(s2, arch, blur[ui].cview(), sobel_y, 3, 3,
                                       gy[ui].view());
      }
      for (auto& s : main_streams) s->synchronize();
      for (auto& s : fork_streams) s->synchronize();
    };

    KernelResult r;
    r.name = "pipeline_blur_sobel_x4";
    r.cells = static_cast<double>(np) * np * kImages * 3;  // 3 stages per image
    r.flops_per_cell = (2.0 * 25 + 2.0 * 9 + 2.0 * 9) / 3.0;
    const auto [stream_t, serial_t] = best_time_interleaved(stream_pass, serial_pass);
    r.seconds = stream_t;
    r.serial_seconds = serial_t;
    r.blocks = pipeline_blocks;
    r.host_threads = ThreadPool::global().size();
    std::printf("%-24s %10.3f ms  (serial %10.3f ms, overlap %.2fx, %d workers)\n",
                r.name.c_str(), r.seconds * 1e3, r.serial_seconds * 1e3,
                r.overlap_speedup(), ThreadPool::global().size());
    results.push_back(r);
  }

  // --- persistent iteration engine vs per-step relaunch, >= 4 workers -------
  {
    KernelResult r = persistent_vs_relaunch(arch, "persistent_vs_relaunch_t4");
    r.host_threads = ThreadPool::global().size();
    results.push_back(r);
  }

  // --- stencil-chain fusion: one persistent launch vs one per stage ---------
  // Depth sweep after the Halide stencil_chain workload shape; all three
  // rows share one warm workspace, and every row's parity memcmp gates the
  // exit code.
  {
    sim::PersistentWorkspace chain_ws;
    for (const int depth : {2, 8, 32}) {
      const std::string name = "chain_fused_vs_staged_d" + std::to_string(depth);
      KernelResult r = chain_fused_vs_staged(arch, depth, chain_ws, name.c_str());
      r.host_threads = ThreadPool::global().size();
      results.push_back(r);
    }
  }

  // --- autotuner vs default vs best hand-tuned schedule ---------------------
  {
    KernelResult r = autotuned_vs_default_row(arch, "autotuned_vs_default");
    r.host_threads = ThreadPool::global().size();
    results.push_back(r);
  }

  write_json(results, kernel_threads, overlap_threads, out_path);

  const double conv_speedup = results[0].speedup_vs_legacy();
  const double stencil_speedup = results[1].speedup_vs_legacy();
  std::printf("\nfunctional-path speedup vs pre-refactor: conv2d %.2fx, stencil2d %.2fx\n",
              conv_speedup, stencil_speedup);
  for (const KernelResult& r : results) {
    if (r.bit_identical == 0) {
      std::fprintf(stderr, "FAIL: %s outputs not bit-identical\n", r.name.c_str());
      return 1;
    }
    if (r.warm_zero_measure == 0) {
      std::fprintf(stderr, "FAIL: %s warm cache hit measured\n", r.name.c_str());
      return 1;
    }
  }
  return 0;
}
