// Ablation: arbitrary filter shapes (Section 6.2: "a simple change in a
// template function ... enables the computation of 2D convolution for any
// filter shape (M, N) as well").
//
// Sweeps strongly rectangular filters: wide filters cost systolic lanes
// (halo in x), tall filters cost register-cache rows (halo in y) — the two
// redundancy axes of the Section 5.3 analysis. SSAM must stay ahead of the
// NPP-like baseline across the shape plane, with the wide/tall asymmetry
// visible in the halo ratios.
#include <iostream>

#include "baselines/conv2d_direct.hpp"
#include "bench_common.hpp"
#include "core/conv2d.hpp"
#include "perfmodel/latency_model.hpp"

int main() {
  using namespace ssam;
  bench::print_simulation_note();
  print_banner("Ablation: rectangular filters (V100, 4096^2, FP32)");
  bench::ShapeChecks checks;

  const auto& arch = sim::tesla_v100();
  Grid2D<float> in(4096, 4096), out(4096, 4096);
  std::vector<float> w(32 * 32, 0.01f);
  const struct {
    int m, n;
  } shapes[] = {{3, 3}, {15, 3}, {3, 15}, {9, 5}, {5, 9}, {21, 3}, {3, 21}, {11, 11}};

  ConsoleTable t({"MxN", "HRrc", "SSAM ms", "NPP ms", "speedup"});
  double wide_ms = 0, tall_ms = 0;
  for (const auto& s : shapes) {
    std::span<const float> wf(w.data(), static_cast<std::size_t>(s.m) * s.n);
    auto ssam = core::conv2d_ssam<float>(arch, in.cview(), wf, s.m, s.n, out.view(), {},
                                         sim::ExecMode::kTiming, {32, 4});
    auto npp = base::conv2d_direct<float>(arch, in.cview(), wf, s.m, s.n, out.view(), {},
                                          sim::ExecMode::kTiming, {32, 4});
    const double ms_ssam = sim::estimate_runtime(arch, ssam).total_ms;
    const double ms_npp = sim::estimate_runtime(arch, npp).total_ms;
    t.add_row({std::to_string(s.m) + "x" + std::to_string(s.n),
               ConsoleTable::num(perf::halo_ratio_rc(s.m, s.n, 4), 3),
               ConsoleTable::num(ms_ssam, 2), ConsoleTable::num(ms_npp, 2),
               ConsoleTable::num(ms_npp / ms_ssam, 2) + "x"});
    checks.check("SSAM faster than NPP at " + std::to_string(s.m) + "x" +
                     std::to_string(s.n),
                 ms_ssam < ms_npp);
    if (s.m == 21 && s.n == 3) wide_ms = ms_ssam;
    if (s.m == 3 && s.n == 21) tall_ms = ms_ssam;
  }
  std::cout << t.str();
  // Wide filters consume warp lanes (only 33-M outputs per warp): for equal
  // tap counts a wide filter must cost more than a tall one under SSAM.
  std::cout << "21x3 (lane halo) vs 3x21 (row halo): "
            << ConsoleTable::num(wide_ms, 2) << " vs " << ConsoleTable::num(tall_ms, 2)
            << " ms\n";
  checks.check("wide filter costs more than tall filter (lane-halo asymmetry)",
               wide_ms > tall_ms);
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
