// Figure 4: 2D convolution performance and scalability.
//
// Image 8192x8192, single precision, filter sizes 2x2..20x20, P=4, B=128
// (Section 6.2). Implementations: SSAM, ArrayFire-like (smem tile), NPP-like
// (direct, dedicated 3x3/5x5 kernels), Halide-like (gmem + unroll),
// cuDNN-like (implicit GEMM, odd filters), cuFFT-like (frequency domain,
// flat in filter size). Fig 4a = P100, Fig 4b = V100.
#include <iostream>
#include <optional>

#include "baselines/conv2d_direct.hpp"
#include "baselines/conv2d_fft.hpp"
#include "baselines/conv2d_gemm.hpp"
#include "baselines/conv2d_halide.hpp"
#include "baselines/conv2d_smem.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/conv2d.hpp"
#include "paperdata/paper_values.hpp"
#include "reference/conv.hpp"

namespace {

using namespace ssam;

constexpr Index kImage = 8192;  // paper domain

struct Row {
  int filter = 0;
  double ssam = 0;
  std::optional<double> arrayfire, npp, halide, cudnn;
};

/// Cross-checks all implementations functionally on a small image so the
/// bench never reports timings for kernels that disagree.
bool verify_small(const sim::ArchSpec& arch) {
  const Index n = 256;
  Grid2D<float> in(n, n);
  fill_random(in, 7);
  std::vector<float> w(49);
  fill_random(w, 8, -0.5, 0.5);
  Grid2D<float> want(n, n);
  ref::conv2d<float>(in.cview(), w, 7, 7, want.view());
  const double tol = verify_tolerance<float>(49);
  auto ok = [&](const Grid2D<float>& got) {
    return normalized_max_diff<float>({got.data(), static_cast<std::size_t>(got.size())},
                                      {want.data(), static_cast<std::size_t>(want.size())}) <=
           tol;
  };
  Grid2D<float> g1(n, n), g2(n, n), g3(n, n), g4(n, n), g5(n, n);
  core::conv2d_ssam<float>(arch, in.cview(), w, 7, 7, g1.view());
  base::conv2d_smem<float>(arch, in.cview(), w, 7, 7, g2.view());
  base::conv2d_direct<float>(arch, in.cview(), w, 7, 7, g3.view());
  base::conv2d_halide<float>(arch, in.cview(), w, 7, 7, g4.view());
  base::conv2d_gemm<float>(arch, in.cview(), w, 7, 7, g5.view());
  return ok(g1) && ok(g2) && ok(g3) && ok(g4) && ok(g5);
}

void run_arch(const sim::ArchSpec& arch, bench::ShapeChecks& checks) {
  print_banner("Figure 4 (" + arch.name + "): 2D convolution, 8192x8192, FP32, runtime ms");

  if (!verify_small(arch)) {
    std::cout << "FUNCTIONAL CROSS-CHECK FAILED — timings withheld\n";
    checks.check(arch.name + ": functional cross-check", false);
    return;
  }
  checks.check(arch.name + ": functional cross-check", true);

  Grid2D<float> in(kImage, kImage);
  Grid2D<float> out(kImage, kImage);
  std::vector<float> w(20 * 20);
  fill_random(w, 3, -0.5, 0.5);
  const double cells = static_cast<double>(kImage) * kImage;
  const auto sample = bench::default_sample();

  const double fft_ms =
      base::conv2d_fft_time<float>(arch, kImage, kImage, 9, 9).estimate.total_ms;

  std::vector<Row> rows;
  for (int f = 2; f <= 20; ++f) {
    Row r;
    r.filter = f;
    std::span<const float> wf(w.data(), static_cast<std::size_t>(f) * f);

    auto ssam = core::conv2d_ssam<float>(arch, in.cview(), wf, f, f, out.view(), {},
                                         sim::ExecMode::kTiming, sample);
    r.ssam = bench::measure(arch, ssam, cells).ms;

    if (f <= base::kArrayFireMaxFilter) {
      auto s = base::conv2d_smem<float>(arch, in.cview(), wf, f, f, out.view(), {},
                                        sim::ExecMode::kTiming, sample);
      r.arrayfire = bench::measure(arch, s, cells).ms;
    }
    auto npp = base::conv2d_direct<float>(arch, in.cview(), wf, f, f, out.view(), {},
                                          sim::ExecMode::kTiming, sample);
    r.npp = bench::measure(arch, npp, cells).ms;

    auto hl = base::conv2d_halide<float>(arch, in.cview(), wf, f, f, out.view(), {},
                                         sim::ExecMode::kTiming, sample);
    r.halide = bench::measure(arch, hl, cells).ms;

    if (base::cudnn_supports(f, f)) {
      auto g = base::conv2d_gemm<float>(arch, in.cview(), wf, f, f, out.view(), {},
                                        sim::ExecMode::kTiming, sample);
      r.cudnn = bench::measure(arch, g, cells).ms;
    }
    rows.push_back(r);
  }

  ConsoleTable t({"filter", "SSAM", "ArrayFire", "NPP", "Halide", "cuDNN", "cuFFT"});
  auto cell = [](const std::optional<double>& v) {
    return v ? ConsoleTable::num(*v, 2) : std::string("-");
  };
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.filter) + "x" + std::to_string(r.filter),
               ConsoleTable::num(r.ssam, 2), cell(r.arrayfire), cell(r.npp),
               cell(r.halide), cell(r.cudnn), ConsoleTable::num(fft_ms, 1)});
  }
  std::cout << t.str();

  // Paper-reported cuFFT constants for context.
  for (const auto& c : paper::cufft_runtimes()) {
    if (arch.name == c.gpu) {
      std::cout << "cuFFT paper-reported: " << c.runtime_ms
                << " ms (flat); simulated: " << ConsoleTable::num(fft_ms, 1) << " ms\n";
    }
  }

  // Shape criteria (Section 6.2 and the abstract).
  bool ssam_fastest = true;
  double npp_speedup_sum = 0;
  int npp_n = 0;
  double af_speedup_max = 0;
  double growth_ok = rows.back().ssam > rows.front().ssam;
  for (const auto& r : rows) {
    if (r.filter >= 3) {
      if (r.arrayfire && *r.arrayfire < r.ssam * 0.98) ssam_fastest = false;
      if (r.npp && *r.npp < r.ssam * 0.98) ssam_fastest = false;
      if (r.halide && *r.halide < r.ssam * 0.98) ssam_fastest = false;
      if (r.cudnn && *r.cudnn < r.ssam * 0.98) ssam_fastest = false;
    }
    if (r.npp) {
      npp_speedup_sum += *r.npp / r.ssam;
      ++npp_n;
    }
    if (r.arrayfire) af_speedup_max = std::max(af_speedup_max, *r.arrayfire / r.ssam);
  }
  const double npp_avg = npp_speedup_sum / npp_n;
  std::cout << "\nSSAM speedup vs NPP (avg over sizes): " << ConsoleTable::num(npp_avg, 2)
            << "x (paper: ~" << paper::headline_claims().npp_speedup_avg << "x)\n";
  std::cout << "SSAM speedup vs ArrayFire (max): " << ConsoleTable::num(af_speedup_max, 2)
            << "x (paper: up to " << paper::headline_claims().arrayfire_speedup_max
            << "x)\n";

  checks.check(arch.name + ": SSAM fastest for all filters >= 3x3", ssam_fastest);
  checks.check(arch.name + ": SSAM vs NPP average speedup >= 2x", npp_avg >= 2.0);
  checks.check(arch.name + ": SSAM vs ArrayFire max speedup >= 1.3x",
               af_speedup_max >= 1.3);
  checks.check(arch.name + ": runtime grows with filter size", growth_ok);
  checks.check(arch.name + ": cuFFT slowest at every plotted size",
               fft_ms > rows.back().ssam && (!rows.back().npp || fft_ms > *rows.back().npp));
  // NPP's dedicated kernels: 3x3 and 5x5 are locally faster than 4x4 / 6x6.
  const auto& r3 = rows[1];
  const auto& r4 = rows[2];
  const auto& r5 = rows[3];
  const auto& r6 = rows[4];
  checks.check(arch.name + ": NPP dedicated-kernel dip at 3x3/5x5",
               *r3.npp < *r4.npp && *r5.npp < *r6.npp);
}

}  // namespace

int main() {
  using namespace ssam;
  bench::print_simulation_note();
  bench::ShapeChecks checks;
  run_arch(sim::tesla_p100(), checks);
  run_arch(sim::tesla_v100(), checks);
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
