// Ablation: the sliding-window length P (Section 4.2, footnote 2).
//
// P trades register pressure against data reuse and ILP: C = P + N - 1
// registers per thread buy P outputs, so the halo ratio HRrc falls with P
// while occupancy eventually drops. The paper fixes P=4 for Fig. 4; this
// ablation shows why that neighborhood is the sweet spot.
#include <iostream>

#include "bench_common.hpp"
#include "core/conv2d.hpp"
#include "perfmodel/latency_model.hpp"

int main() {
  using namespace ssam;
  bench::print_simulation_note();
  print_banner("Ablation: sliding-window length P (SSAM conv2d, 9x9, FP32)");
  bench::ShapeChecks checks;

  Grid2D<float> in(4096, 4096), out(4096, 4096);
  std::vector<float> w(81, 0.01f);

  for (const sim::ArchSpec* arch : {&sim::tesla_p100(), &sim::tesla_v100()}) {
    ConsoleTable t({"P", "C=P+N-1", "HRrc", "regs/thread", "occupancy", "runtime ms"});
    double best_ms = 1e30;
    int best_p = 0;
    double p1_ms = 0;
    for (int p : {1, 2, 4, 8, 16, 32}) {
      core::ConvOptions opt;
      opt.p = p;
      auto stats = core::conv2d_ssam<float>(*arch, in.cview(), w, 9, 9, out.view(), opt,
                                            sim::ExecMode::kTiming, {32, 4});
      const auto est = sim::estimate_runtime(*arch, stats);
      t.add_row({std::to_string(p), std::to_string(p + 8),
                 ConsoleTable::num(perf::halo_ratio_rc(9, 9, p), 3),
                 std::to_string(stats.cfg.regs_per_thread),
                 ConsoleTable::num(est.occupancy.fraction, 2),
                 ConsoleTable::num(est.total_ms, 2)});
      if (est.total_ms < best_ms) {
        best_ms = est.total_ms;
        best_p = p;
      }
      if (p == 1) p1_ms = est.total_ms;
    }
    std::cout << "\n" << arch->name << ":\n" << t.str();
    std::cout << "best P = " << best_p << " (paper uses P=4)\n";
    checks.check(arch->name + ": some P > 1 beats P = 1 (sliding window pays)",
                 best_ms < p1_ms);
    checks.check(arch->name + ": best P in the paper's neighborhood [2, 16]",
                 best_p >= 2 && best_p <= 16);
  }
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
