// Table 3: the stencil benchmark suite (order k, FLOPs per point, domains).
//
// Prints the paper's metadata next to what our generic one-MAD-per-tap
// kernels actually execute. For box stencils the paper counts kernels with
// common-subexpression/symmetry optimizations, so fpp can differ; GCells/s
// (the metric of Figs. 5-6) is independent of FPP counting — exactly why the
// paper uses it (Section 6.3).
#include <iostream>

#include "bench_common.hpp"
#include "core/dgraph.hpp"
#include "core/stencil_suite.hpp"
#include "paperdata/paper_values.hpp"

int main() {
  using namespace ssam;
  print_banner("Table 3: Stencil benchmark suite");
  std::cout << "Domains (Section 6.3): 2D " << core::kSuiteDomain2D << "^2, 3D "
            << core::kSuiteDomain3D << "^3\n";

  ConsoleTable t({"benchmark", "k (paper)", "k (ours)", "FPP (paper)", "FPP (ours)",
                  "taps", "dims", "shuffles/step (plan D)"});
  bench::ShapeChecks checks;
  const auto suite = core::stencil_suite<float>();
  for (const auto& row : paper::table3()) {
    const core::StencilShape<float> s = core::suite_stencil<float>(row.benchmark);
    const auto plan = core::build_plan(s.taps);
    t.add_row({row.benchmark, std::to_string(row.k), std::to_string(s.order),
               std::to_string(row.fpp), std::to_string(s.fpp_measured()),
               std::to_string(s.taps.size()), std::to_string(s.dims),
               std::to_string(plan.horizontal_shifts())});
    checks.check(std::string(row.benchmark) + ": order matches Table 3",
                 s.order == row.k);
  }
  std::cout << t.str();
  checks.check("suite has 15 benchmarks", suite.size() == 15);
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
