// Table 1: Shared Memory and Register Files on GPUs.
//
// Prints the paper's table next to the simulated architecture registry so
// any drift between the two is visible.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/arch.hpp"
#include "paperdata/paper_values.hpp"

int main() {
  using namespace ssam;
  print_banner("Table 1: Shared Memory and Register Files on GPUs");
  bench::print_simulation_note();

  ConsoleTable t({"Tesla GPU", "Shared Memory/SM (paper)", "SMem/SM (simulated)",
                  "32-bit registers/SM", "SMs (paper)", "SMs (simulated)"});
  bench::ShapeChecks checks;
  for (const auto& row : paper::table1()) {
    const sim::ArchSpec& a = sim::arch_by_name(row.gpu);
    t.add_row({row.gpu, row.smem_per_sm,
               std::to_string(a.smem_per_sm / 1024) + " KB",
               std::to_string(row.regs_per_sm), std::to_string(row.sms),
               std::to_string(a.sm_count)});
    checks.check(std::string(row.gpu) + ": register file 65536x32-bit",
                 a.regs_per_sm == row.regs_per_sm);
    checks.check(std::string(row.gpu) + ": SM count matches",
                 a.sm_count == row.sms);
  }
  std::cout << t.str();

  // Section 2 (ii): registers per SM are > 2.7x larger than shared memory.
  const auto& v100 = sim::tesla_v100();
  const double ratio =
      static_cast<double>(v100.regs_per_sm) * 4.0 / static_cast<double>(v100.smem_per_sm);
  std::cout << "\nRegister file vs shared memory (V100): " << ConsoleTable::num(ratio, 2)
            << "x (paper: \"more than 2.7x\" — 256KB/96KB is 2.67x; the paper rounds)\n";
  checks.check("register file ~2.7x shared memory", ratio >= 2.66);

  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
