// Table 2: The latency of different operations (cycles/warp).
//
// Re-runs the paper's dependent-chain micro-benchmarks (cudabmk methodology,
// Section 5.1) on the simulated GPUs and compares with the paper's measured
// values. The simulator's latency parameters come from this very table, so
// the measured chains must reproduce it — this is the self-consistency loop
// the paper closes against real hardware.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/microbench.hpp"
#include "paperdata/paper_values.hpp"

int main() {
  using namespace ssam;
  print_banner("Table 2: Operation latencies (cycles/warp), micro-benchmarked");
  bench::print_simulation_note();

  ConsoleTable t({"GPU", "Operation", "Paper (measured)", "Simulator (measured)"});
  bench::ShapeChecks checks;
  for (const auto& row : paper::table2()) {
    const sim::ArchSpec& arch = sim::arch_by_name(row.gpu);
    const sim::MicrobenchResult r = sim::run_microbench(arch);
    t.add_row({row.gpu, "shfl_up_sync", ConsoleTable::num(row.shfl_up_sync, 0),
               ConsoleTable::num(r.shfl_up_cycles, 1)});
    t.add_row({row.gpu, "add, sub, mad", ConsoleTable::num(row.add_sub_mad, 0),
               ConsoleTable::num(r.mad_cycles, 1)});
    t.add_row({row.gpu, "smem read", ConsoleTable::num(row.smem_read, 0),
               ConsoleTable::num(r.smem_read_cycles, 1)});
    t.add_row({row.gpu, "gmem read (chase)", "200~400 [42]",
               ConsoleTable::num(r.gmem_read_cycles, 1)});
    checks.check(row.gpu + std::string(": shfl latency within 10%"),
                 std::abs(r.shfl_up_cycles - row.shfl_up_sync) <= 0.1 * row.shfl_up_sync);
    checks.check(row.gpu + std::string(": mad latency within 10%"),
                 std::abs(r.mad_cycles - row.add_sub_mad) <= 0.1 * row.add_sub_mad);
    checks.check(row.gpu + std::string(": smem latency within 10%"),
                 std::abs(r.smem_read_cycles - row.smem_read) <= 0.1 * row.smem_read);
    checks.check(row.gpu + std::string(": gmem chase within 200~500 cycles"),
                 r.gmem_read_cycles >= 200 && r.gmem_read_cycles <= 500);
  }
  std::cout << t.str();
  checks.print();
  return checks.failures() == 0 ? 0 : 1;
}
