// 3D acoustic wave propagation with the 3d7pt stencil (the finite-difference
// workload of Section 6.3 / Micikevicius [36]): second-order wave equation
// with a point source, run with the SSAM 3D kernel.
//
//   p_next = 2*p - p_prev + c^2 * laplacian(p)
//
// The Laplacian is the SSAM part; the (2*p - p_prev) update is an
// element-wise pass. Energy must stay bounded under the CFL-stable setting.
//
// All time steps run on the persistent iteration engine
// (core/iterate_persistent.hpp), sharded across a virtual two-device group
// (core/shard.hpp): each device's pool slice owns a z-band shard, every
// plane band stays resident on its worker across every step, p_prev rides
// along as a resident aux field, and the element-wise wave update runs as
// the engine's post hook on each band right after its Laplacian sweep —
// the halo channels (the inter-device seam included) then carry the
// *updated* pressure, so no step ever round-trips through the global
// arrays.
#include <cmath>
#include <iostream>

#include "common/grid.hpp"
#include "core/iterate_persistent.hpp"
#include "core/shard.hpp"
#include "core/stencil3d.hpp"
#include "gpusim/device.hpp"
#include "gpusim/timing.hpp"

int main() {
  using namespace ssam;
  const Index n = 96;
  const int steps = 48;
  const float c2 = 0.16f;  // CFL-stable (<= 1/3 in 3D)

  core::StencilShape<float> laplace;
  laplace.name = "3d7pt-laplacian";
  laplace.dims = 3;
  laplace.order = 1;
  laplace.taps = {{0, 0, 0, -6.0f}, {1, 0, 0, 1.0f},  {-1, 0, 0, 1.0f},
                  {0, 1, 0, 1.0f},  {0, -1, 0, 1.0f}, {0, 0, 1, 1.0f},
                  {0, 0, -1, 1.0f}};

  Grid3D<float> p(n, n, n, 0.0f), scratch(n, n, n), p_prev(n, n, n, 0.0f);
  // Point source in the center (a Ricker-ish impulse).
  p.at(n / 2, n / 2, n / 2) = 1.0f;
  p_prev.at(n / 2, n / 2, n / 2) = 0.9f;

  // Element-wise wave update over each resident band: the sweep left
  // c^2-unscaled Laplacian values in `next`; combine with the current and
  // previous pressure and advance the aux field.
  auto wave_update = [c2](GridView3D<float> next, GridView3D<const float> cur,
                          GridView3D<float> prev) {
    for (Index z = 0; z < next.nz(); ++z) {
      for (Index y = 0; y < next.ny(); ++y) {
        for (Index x = 0; x < next.nx(); ++x) {
          const float lap = next.at(x, y, z);
          const float pv = cur.at(x, y, z);
          next.at(x, y, z) = 2.0f * pv - prev.at(x, y, z) + c2 * lap;
          prev.at(x, y, z) = pv;
        }
      }
    }
  };
  core::PersistentOptions opt;
  opt.shard = core::ShardPolicy::sharded(2);
  const auto run = core::iterate_stencil3d_persistent<float>(
      sim::tesla_v100(), p, scratch, laplace, steps, opt, wave_update, &p_prev);
  std::cout << "persistent run: " << run.tiles << " resident tiles on " << run.devices
            << " virtual devices, " << run.sweeps
            << " steps (p_prev resident as aux field)\n";

  // Wavefront radius after `steps` steps ~ steps * sqrt(c2) cells.
  double energy = 0;
  Index front = 0;
  for (Index x = n / 2; x < n; ++x) {
    if (std::abs(p.at(x, n / 2, n / 2)) > 1e-4f) front = x - n / 2;
  }
  for (Index i = 0; i < p.size(); ++i) {
    energy += static_cast<double>(p.data()[i]) * p.data()[i];
  }
  std::cout << "after " << steps << " steps: wavefront radius ~ " << front
            << " cells (expected <= " << steps << "), energy = " << energy << "\n";
  std::cout << (std::isfinite(energy) && energy < 1e6 ? "stable (CFL respected)\n"
                                                      : "UNSTABLE!\n");

  // Per-step Laplacian cost on the simulated GPUs at the paper's 512^3 size.
  const auto plan = core::build_plan(laplace.taps);
  Grid3D<float> big_in(512, 512, 512), big_out(512, 512, 512);
  for (const sim::ArchSpec* arch : {&sim::tesla_p100(), &sim::tesla_v100()}) {
    auto st = core::stencil3d_ssam<float>(*arch, big_in.cview(), plan, big_out.view(), {},
                                          sim::ExecMode::kTiming);
    const auto est = sim::estimate_runtime(*arch, st);
    std::cout << arch->name << " (512^3): " << est.total_ms << " ms/step, "
              << 512.0 * 512 * 512 / est.total_ms / 1e6 << " GCells/s\n";
  }
  return 0;
}
