// 3D acoustic wave propagation with the 3d7pt stencil (the finite-difference
// workload of Section 6.3 / Micikevicius [36]): second-order wave equation
// with a point source, run with the SSAM 3D kernel.
//
//   p_next = 2*p - p_prev + c^2 * laplacian(p)
//
// The Laplacian is the SSAM part; the (2*p - p_prev) update is an
// element-wise pass. Energy must stay bounded under the CFL-stable setting.
//
// All time steps are enqueued on one stream: each step is a stencil3d
// launch followed by a host op for the element-wise update, in FIFO order,
// with one synchronize at the end instead of a join per step.
#include <cmath>
#include <iostream>

#include "common/grid.hpp"
#include "core/stencil3d.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/timing.hpp"

int main() {
  using namespace ssam;
  const Index n = 96;
  const int steps = 48;
  const float c2 = 0.16f;  // CFL-stable (<= 1/3 in 3D)

  core::StencilShape<float> laplace;
  laplace.name = "3d7pt-laplacian";
  laplace.dims = 3;
  laplace.order = 1;
  laplace.taps = {{0, 0, 0, -6.0f}, {1, 0, 0, 1.0f},  {-1, 0, 0, 1.0f},
                  {0, 1, 0, 1.0f},  {0, -1, 0, 1.0f}, {0, 0, 1, 1.0f},
                  {0, 0, -1, 1.0f}};

  Grid3D<float> p(n, n, n, 0.0f), p_prev(n, n, n, 0.0f), lap(n, n, n);
  // Point source in the center (a Ricker-ish impulse).
  p.at(n / 2, n / 2, n / 2) = 1.0f;
  p_prev.at(n / 2, n / 2, n / 2) = 0.9f;

  const auto plan = core::build_plan(laplace.taps);
  {
    sim::Stream stream;
    for (int s = 0; s < steps; ++s) {
      core::stencil3d_ssam_async<float>(stream, sim::tesla_v100(), p.cview(), plan,
                                        lap.view());
      stream.host([&p, &p_prev, &lap, c2] {
        for (Index i = 0; i < p.size(); ++i) {
          const float next = 2.0f * p.data()[i] - p_prev.data()[i] + c2 * lap.data()[i];
          p_prev.data()[i] = p.data()[i];
          p.data()[i] = next;
        }
      });
    }
    stream.synchronize();
  }

  // Wavefront radius after `steps` steps ~ steps * sqrt(c2) cells.
  double energy = 0;
  Index front = 0;
  for (Index x = n / 2; x < n; ++x) {
    if (std::abs(p.at(x, n / 2, n / 2)) > 1e-4f) front = x - n / 2;
  }
  for (Index i = 0; i < p.size(); ++i) {
    energy += static_cast<double>(p.data()[i]) * p.data()[i];
  }
  std::cout << "after " << steps << " steps: wavefront radius ~ " << front
            << " cells (expected <= " << steps << "), energy = " << energy << "\n";
  std::cout << (std::isfinite(energy) && energy < 1e6 ? "stable (CFL respected)\n"
                                                      : "UNSTABLE!\n");

  // Per-step Laplacian cost on the simulated GPUs at the paper's 512^3 size.
  Grid3D<float> big_in(512, 512, 512), big_out(512, 512, 512);
  for (const sim::ArchSpec* arch : {&sim::tesla_p100(), &sim::tesla_v100()}) {
    auto st = core::stencil3d_ssam<float>(*arch, big_in.cview(), plan, big_out.view(), {},
                                          sim::ExecMode::kTiming);
    const auto est = sim::estimate_runtime(*arch, st);
    std::cout << arch->name << " (512^3): " << est.total_ms << " ms/step, "
              << 512.0 * 512 * 512 / est.total_ms / 1e6 << " GCells/s\n";
  }
  return 0;
}
