// Quickstart: convolve an image with SSAM in ~20 lines.
//
//   1. build a grid, 2. pick a filter, 3. call core::conv2d_ssam —
// functional mode computes the full output on the simulated GPU; timing
// mode estimates what the kernel would cost on a real P100/V100.
#include <iostream>

#include "common/grid.hpp"
#include "common/rng.hpp"
#include "core/conv2d.hpp"
#include "gpusim/timing.hpp"

int main() {
  using namespace ssam;

  // A 512x512 image and a 5x5 sharpening-ish filter.
  Grid2D<float> image(512, 512);
  fill_random(image, /*seed=*/1, 0.0, 1.0);
  std::vector<float> filter(25, -0.04f);
  filter[12] = 2.0f;  // center tap

  // Functional run: every output computed, borders replicate.
  Grid2D<float> output(512, 512);
  core::conv2d_ssam<float>(sim::tesla_v100(), image.cview(), filter, 5, 5, output.view());

  double checksum = 0;
  for (Index i = 0; i < output.size(); ++i) checksum += output.data()[i];
  std::cout << "SSAM 5x5 convolution done; checksum = " << checksum << "\n";

  // Timing run: sampled blocks + scoreboard -> estimated V100 runtime.
  auto stats = core::conv2d_ssam<float>(sim::tesla_v100(), image.cview(), filter, 5, 5,
                                        output.view(), {}, sim::ExecMode::kTiming);
  const auto est = sim::estimate_runtime(sim::tesla_v100(), stats);
  std::cout << "estimated V100 runtime: " << est.total_ms << " ms (" << est.bound
            << "-bound), occupancy " << est.occupancy.fraction * 100 << "%, "
            << stats.totals.shfl_ops << " shuffles, " << stats.totals.fp_ops
            << " FP warp-ops\n";
  return 0;
}
