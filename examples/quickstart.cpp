// Quickstart: convolve an image through the simulation service in ~20 lines.
//
//   1. build a grid, 2. describe the request as a `SimJob`, 3. submit it to
// a `SimServer` and wait the future — the service schedules it onto a
// virtual device and computes the full output on the simulated GPU. The
// result is bit-identical to calling `core::run_job` (or the underlying
// kernel) directly. Timing mode stays a direct kernel call: it estimates
// what the kernel would cost on a real P100/V100.
#include <iostream>

#include "common/grid.hpp"
#include "common/rng.hpp"
#include "core/autotune.hpp"
#include "core/conv2d.hpp"
#include "core/server.hpp"
#include "core/stencil_shape.hpp"
#include "gpusim/timing.hpp"

int main() {
  using namespace ssam;

  // A 512x512 image and a 5x5 sharpening-ish filter.
  Grid2D<float> image(512, 512);
  fill_random(image, /*seed=*/1, 0.0, 1.0);
  std::vector<float> filter(25, -0.04f);
  filter[12] = 2.0f;  // center tap

  // Functional run through the service: every output computed, borders
  // replicate. The server resolves its config (threads, devices) from the
  // environment — `server.config().describe()` shows what it picked.
  Grid2D<float> output(512, 512);
  core::SimServer server;
  std::cout << "service config: " << server.config().describe() << "\n";
  core::JobFuture fut =
      server.submit(core::SimJob::conv2d(image, output, filter, 5, 5));
  const core::JobResult& r = fut.wait();

  double checksum = 0;
  for (Index i = 0; i < output.size(); ++i) checksum += output.data()[i];
  std::cout << "SSAM 5x5 convolution done on device " << r.device << " in "
            << r.exec_ms << " ms; checksum = " << checksum << "\n";

  // Autotuned iterative run: `JobHints::auto_tune` resolves the schedule
  // (iteration policy, resident tiles, sharding) through the per-host tuning
  // cache (`SSAM_TUNE_CACHE`, default ~/.cache/ssam/). The first run on a
  // host measures a few candidates; every later run is a cache hit with zero
  // measurements — and the tuned output is bit-identical to the default
  // schedule's, because only bit-safe knobs are tuned.
  Grid2D<float> heat(512, 512), scratch(512, 512);
  fill_random(heat, /*seed=*/2, 0.0, 1.0);
  core::JobHints hints;
  hints.auto_tune = true;
  core::SimJob tuned_job =
      core::SimJob::stencil2d(heat, scratch, core::star2d<float>(1), 16, hints);
  const core::TuneResult tuned =
      core::AutoTuner::global().resolve(sim::tesla_v100(), tuned_job);
  (void)core::run_job(sim::tesla_v100(), tuned_job);
  std::cout << "autotuned 16-step star-1 stencil: origin="
            << core::tune_origin_name(tuned.origin) << ", schedule ["
            << tuned.schedule.describe() << "]\n";

  // Timing run: sampled blocks + scoreboard -> estimated V100 runtime.
  auto stats = core::conv2d_ssam<float>(sim::tesla_v100(), image.cview(), filter, 5, 5,
                                        output.view(), {}, sim::ExecMode::kTiming);
  const auto est = sim::estimate_runtime(sim::tesla_v100(), stats);
  std::cout << "estimated V100 runtime: " << est.total_ms << " ms (" << est.bound
            << "-bound), occupancy " << est.occupancy.fraction * 100 << "%, "
            << stats.totals.shfl_ops << " shuffles, " << stats.totals.fp_ops
            << " FP warp-ops\n";
  return 0;
}
