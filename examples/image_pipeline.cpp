// Image pipeline: Gaussian blur + Sobel edge detection on a synthetic image,
// comparing the SSAM convolution against the NPP-like direct baseline and
// writing PGM files you can open with any viewer.
//
// The pipeline runs as one stream with a forked Sobel pair: the blur is
// enqueued asynchronously, an event marks its completion, and the two Sobel
// gradients (independent of each other) run on two streams that both wait on
// that event — so on a multi-core host they overlap on the worker pool.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>

#include "baselines/conv2d_direct.hpp"
#include "common/grid.hpp"
#include "core/conv2d.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/timing.hpp"

namespace {

using namespace ssam;

/// Synthetic test card: gradient + circles + bars (edges in all directions).
Grid2D<float> make_test_image(Index n) {
  Grid2D<float> img(n, n);
  for (Index y = 0; y < n; ++y) {
    for (Index x = 0; x < n; ++x) {
      float v = 0.2f + 0.3f * static_cast<float>(x) / static_cast<float>(n);
      const float dx = static_cast<float>(x - n / 2);
      const float dy = static_cast<float>(y - n / 2);
      const float r = std::sqrt(dx * dx + dy * dy);
      if (r < static_cast<float>(n) / 4 && r > static_cast<float>(n) / 5) v = 1.0f;
      if ((x / 16) % 2 == 0 && y > 3 * n / 4) v = 0.9f;
      img.at(x, y) = v;
    }
  }
  return img;
}

void write_pgm(const Grid2D<float>& img, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  f << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  for (Index y = 0; y < img.height(); ++y) {
    for (Index x = 0; x < img.width(); ++x) {
      const float v = std::min(1.0f, std::max(0.0f, img.at(x, y)));
      f.put(static_cast<char>(v * 255.0f));
    }
  }
  std::cout << "wrote " << path << "\n";
}

std::vector<float> gaussian5x5() {
  const float k[5] = {1, 4, 6, 4, 1};
  std::vector<float> w(25);
  float sum = 0;
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      w[static_cast<std::size_t>(y * 5 + x)] = k[y] * k[x];
      sum += w[static_cast<std::size_t>(y * 5 + x)];
    }
  }
  for (auto& v : w) v /= sum;
  return w;
}

}  // namespace

int main() {
  using namespace ssam;
  const Index n = 512;
  Grid2D<float> img = make_test_image(n);
  write_pgm(img, "pipeline_input.pgm");

  // The whole pipeline goes through the launch queue: blur on stream s1, an
  // event forks the two independent Sobel gradients onto s1 and s2.
  const auto gauss = gaussian5x5();
  const std::vector<float> sobel_x = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  const std::vector<float> sobel_y = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
  Grid2D<float> blurred(n, n), gx(n, n), gy(n, n), mag(n, n);

  const auto t0 = std::chrono::steady_clock::now();
  {
    sim::Stream s1, s2;
    core::conv2d_ssam_async<float>(s1, sim::tesla_v100(), img.cview(), gauss, 5, 5,
                                   blurred.view());
    const sim::Event blur_done = s1.record();
    core::conv2d_ssam_async<float>(s1, sim::tesla_v100(), blurred.cview(), sobel_x, 3, 3,
                                   gx.view());
    s2.wait(blur_done);
    core::conv2d_ssam_async<float>(s2, sim::tesla_v100(), blurred.cview(), sobel_y, 3, 3,
                                   gy.view());
    s1.synchronize();
    s2.synchronize();
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "pipeline (3 kernels, 2 streams) simulated in "
            << std::chrono::duration<double, std::milli>(t1 - t0).count() << " ms on "
            << ThreadPool::global().size() << " pool worker(s)\n";
  write_pgm(blurred, "pipeline_blurred.pgm");

  for (Index i = 0; i < mag.size(); ++i) {
    mag.data()[i] = std::sqrt(gx.data()[i] * gx.data()[i] + gy.data()[i] * gy.data()[i]);
  }
  write_pgm(mag, "pipeline_edges.pgm");

  // Cross-check SSAM against the NPP-like baseline on the blur stage.
  Grid2D<float> blurred_npp(n, n);
  base::conv2d_direct<float>(sim::tesla_v100(), img.cview(), gauss, 5, 5,
                             blurred_npp.view());
  double max_diff = 0;
  for (Index i = 0; i < blurred.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(blurred.data()[i]) -
                                           blurred_npp.data()[i]));
  }
  std::cout << "SSAM vs NPP-like max difference: " << max_diff << " (should be ~1e-7)\n";

  // What would each cost on a V100?
  auto s1 = core::conv2d_ssam<float>(sim::tesla_v100(), img.cview(), gauss, 5, 5,
                                     blurred.view(), {}, sim::ExecMode::kTiming);
  auto s2 = base::conv2d_direct<float>(sim::tesla_v100(), img.cview(), gauss, 5, 5,
                                       blurred_npp.view(), {}, sim::ExecMode::kTiming);
  std::cout << "blur 512x512, estimated V100 runtime: SSAM "
            << sim::estimate_runtime(sim::tesla_v100(), s1).total_ms << " ms vs NPP-like "
            << sim::estimate_runtime(sim::tesla_v100(), s2).total_ms << " ms\n";
  return 0;
}
