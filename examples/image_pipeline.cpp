// Image pipeline: Gaussian blur + Sobel edge detection on a synthetic image,
// expressed as a stencil-chain DAG (core/chain.hpp) and compiled into ONE
// persistent run — blur output feeds the forked Sobel pair in-resident, the
// gradients join element-wise into the magnitude, and only the final edge
// map is written to global memory. The staged reference (one launch per
// stage, intermediates round-tripped through a workspace scratch block)
// runs on the SAME warm workspace, so the fused-vs-staged comparison is an
// honest like-for-like: same kernels, same allocations, different data
// movement. PGM files are written for any image viewer.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>

#include "baselines/conv2d_direct.hpp"
#include "common/grid.hpp"
#include "core/chain.hpp"
#include "core/conv2d.hpp"
#include "gpusim/timing.hpp"

namespace {

using namespace ssam;

/// Synthetic test card: gradient + circles + bars (edges in all directions).
Grid2D<float> make_test_image(Index n) {
  Grid2D<float> img(n, n);
  for (Index y = 0; y < n; ++y) {
    for (Index x = 0; x < n; ++x) {
      float v = 0.2f + 0.3f * static_cast<float>(x) / static_cast<float>(n);
      const float dx = static_cast<float>(x - n / 2);
      const float dy = static_cast<float>(y - n / 2);
      const float r = std::sqrt(dx * dx + dy * dy);
      if (r < static_cast<float>(n) / 4 && r > static_cast<float>(n) / 5) v = 1.0f;
      if ((x / 16) % 2 == 0 && y > 3 * n / 4) v = 0.9f;
      img.at(x, y) = v;
    }
  }
  return img;
}

void write_pgm(const Grid2D<float>& img, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  f << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  for (Index y = 0; y < img.height(); ++y) {
    for (Index x = 0; x < img.width(); ++x) {
      const float v = std::min(1.0f, std::max(0.0f, img.at(x, y)));
      f.put(static_cast<char>(v * 255.0f));
    }
  }
  std::cout << "wrote " << path << "\n";
}

std::vector<float> gaussian5x5() {
  const float k[5] = {1, 4, 6, 4, 1};
  std::vector<float> w(25);
  float sum = 0;
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      w[static_cast<std::size_t>(y * 5 + x)] = k[y] * k[x];
      sum += w[static_cast<std::size_t>(y * 5 + x)];
    }
  }
  for (auto& v : w) v /= sum;
  return w;
}

/// Row-major m x n correlation filter as a stencil shape (zero weights
/// dropped — the plan does not need them).
core::StencilShape<float> filter_shape(std::string name, const std::vector<float>& f,
                                       int m, int n) {
  core::StencilShape<float> s;
  s.name = std::move(name);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float w = f[static_cast<std::size_t>(i * n + j)];
      if (w != 0.0f) s.taps.push_back({j - n / 2, i - m / 2, 0, w});
    }
  }
  return s;
}

double run_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace ssam;
  const Index n = 512;
  Grid2D<float> img = make_test_image(n);
  write_pgm(img, "pipeline_input.pgm");

  // The pipeline as a chain DAG: blur, then the two Sobel gradients forked
  // off the blurred image and joined into the gradient magnitude. compile()
  // lowers the diamond onto two stages — the second a dual stencil whose
  // partial sums share one register-cache pass.
  const std::vector<float> sobel_x = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  const std::vector<float> sobel_y = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
  core::ChainGraph<float> g;
  const int in = g.input();
  const int blur = g.stencil(in, filter_shape("gauss5x5", gaussian5x5(), 5, 5));
  const int gx = g.stencil(blur, filter_shape("sobel_x", sobel_x, 3, 3));
  const int gy = g.stencil(blur, filter_shape("sobel_y", sobel_y, 3, 3));
  (void)g.combine(gx, gy,
                  [](float a, float b) { return std::sqrt(a * a + b * b); });
  const std::vector<core::ChainStage<float>> stages = g.compile();
  std::cout << "chain DAG (4 kernels + join) compiled to " << stages.size()
            << " fused stages\n";

  // One warm workspace serves both paths: the staged reference ping-pongs
  // its intermediates through the scratch block, the fused run carves its
  // residence buffers from the arena — neither invalidates the other.
  sim::PersistentWorkspace ws;
  Grid2D<float> edges_staged(n, n), edges_fused(n, n);
  core::PersistentOptions staged_opt;
  staged_opt.policy = core::IterationPolicy::kRelaunch;
  core::PersistentOptions fused_opt;
  fused_opt.policy = core::IterationPolicy::kPersistent;

  auto staged = [&] {
    (void)core::run_chain2d<float>(sim::tesla_v100(), img, edges_staged, stages,
                                   staged_opt, &ws);
  };
  auto fused = [&] {
    (void)core::run_chain2d<float>(sim::tesla_v100(), img, edges_fused, stages,
                                   fused_opt, &ws);
  };
  staged();  // cold: allocates the scratch block
  fused();   // cold: allocates the arena
  const double staged_ms = run_ms(staged);
  const double fused_ms = run_ms(fused);
  std::cout << "staged (one launch per stage): " << staged_ms << " ms, fused (one "
            << "persistent launch): " << fused_ms << " ms on "
            << ThreadPool::global().size() << " pool worker(s)\n";

  const bool identical =
      std::memcmp(edges_staged.data(), edges_fused.data(),
                  static_cast<std::size_t>(edges_staged.size()) * sizeof(float)) == 0;
  std::cout << "fused vs staged: " << (identical ? "bit-identical" : "MISMATCH") << "\n";
  write_pgm(edges_fused, "pipeline_edges.pgm");

  // Cross-check the blur stage (depth-1 chain, same workspace) against the
  // NPP-like direct baseline.
  Grid2D<float> blurred(n, n);
  (void)core::run_chain2d<float>(sim::tesla_v100(), img, blurred, {stages.front()},
                                 staged_opt, &ws);
  write_pgm(blurred, "pipeline_blurred.pgm");
  Grid2D<float> blurred_npp(n, n);
  base::conv2d_direct<float>(sim::tesla_v100(), img.cview(), gaussian5x5(), 5, 5,
                             blurred_npp.view());
  double max_diff = 0;
  for (Index i = 0; i < blurred.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(blurred.data()[i]) -
                                           blurred_npp.data()[i]));
  }
  std::cout << "SSAM vs NPP-like max difference: " << max_diff << " (should be ~1e-7)\n";

  // What would the blur cost on a V100?
  auto s1 = core::conv2d_ssam<float>(sim::tesla_v100(), img.cview(), gaussian5x5(), 5, 5,
                                     blurred.view(), {}, sim::ExecMode::kTiming);
  auto s2 = base::conv2d_direct<float>(sim::tesla_v100(), img.cview(), gaussian5x5(), 5,
                                       5, blurred_npp.view(), {}, sim::ExecMode::kTiming);
  std::cout << "blur 512x512, estimated V100 runtime: SSAM "
            << sim::estimate_runtime(sim::tesla_v100(), s1).total_ms << " ms vs NPP-like "
            << sim::estimate_runtime(sim::tesla_v100(), s2).total_ms << " ms\n";
  return identical ? 0 : 1;
}
