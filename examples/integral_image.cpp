// Integral images (Summed Area Tables) with the SSAM scan machinery
// (Section 3.6 / Chen et al. [8]): build a SAT, then answer box-filter
// queries of any size in O(1) each — the trick behind Viola-Jones features
// and fast box blurs.
#include <iostream>

#include "common/grid.hpp"
#include "common/rng.hpp"
#include "core/sat.hpp"
#include "gpusim/timing.hpp"
#include "reference/scan.hpp"

int main() {
  using namespace ssam;
  const Index n = 768;
  Grid2D<float> img(n, n);
  fill_random(img, /*seed=*/42, 0.0, 1.0);

  Grid2D<float> sat(n, n);
  core::summed_area_table<float>(sim::tesla_v100(), img.cview(), sat.view());

  // O(1) box filters of wildly different sizes from the same SAT.
  std::cout << "box means around the center from one SAT:\n";
  for (Index half : {2, 8, 32, 128, 300}) {
    const Index x0 = std::max<Index>(0, n / 2 - half);
    const Index y0 = std::max<Index>(0, n / 2 - half);
    const Index x1 = std::min<Index>(n - 1, n / 2 + half);
    const Index y1 = std::min<Index>(n - 1, n / 2 + half);
    const double sum = ref::sat_rect_sum<float>(sat.cview(), x0, y0, x1, y1);
    const double area = static_cast<double>(x1 - x0 + 1) * (y1 - y0 + 1);
    std::cout << "  " << (2 * half + 1) << "x" << (2 * half + 1)
              << " box mean = " << sum / area << " (uniform [0,1] => ~0.5)\n";
  }

  // Verify against a direct summation for one query.
  double direct = 0;
  for (Index y = 100; y <= 200; ++y) {
    for (Index x = 50; x <= 350; ++x) direct += img.at(x, y);
  }
  const double fast = ref::sat_rect_sum<float>(sat.cview(), 50, 100, 350, 200);
  std::cout << "301x101 rectangle: direct = " << direct << ", SAT = " << fast
            << " (diff " << std::abs(direct - fast) << ")\n";

  // Cost of building the SAT on the simulated GPUs.
  for (const sim::ArchSpec* arch : {&sim::tesla_p100(), &sim::tesla_v100()}) {
    auto launches =
        core::summed_area_table<float>(*arch, img.cview(), sat.view(),
                                       sim::ExecMode::kTiming);
    double ms = 0;
    for (const auto& st : launches) ms += sim::estimate_runtime(*arch, st).total_ms;
    std::cout << arch->name << ": SAT build " << ms << " ms (" << launches.size()
              << " kernels)\n";
  }
  return 0;
}
