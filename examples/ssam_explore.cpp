// ssam_explore — command-line exploration of any kernel x GPU x problem size.
//
//   ssam_explore                             # demo sweep
//   ssam_explore conv2d V100 4096 9          # 9x9 conv on 4096^2
//   ssam_explore stencil P100 8192 2d13pt    # suite stencil by Table 3 name
//   ssam_explore gemm V100 1024              # C = A*B at 1024^3
//
// Prints the simulated runtime estimate, the bound (compute/memory),
// occupancy, instruction mix, and a functional spot-check against the
// scalar reference on a reduced domain.
#include <iostream>
#include <string>

#include "baselines/conv2d_direct.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/conv2d.hpp"
#include "core/gemm.hpp"
#include "core/stencil2d.hpp"
#include "core/stencil3d.hpp"
#include "core/stencil_suite.hpp"
#include "gpusim/timing.hpp"
#include "reference/conv.hpp"
#include "reference/stencil.hpp"

namespace {

using namespace ssam;

void report(const sim::ArchSpec& arch, const sim::KernelStats& stats, double cells,
            bool verified) {
  const auto est = sim::estimate_runtime(arch, stats);
  ConsoleTable t({"metric", "value"});
  t.add_row({"estimated runtime", ConsoleTable::num(est.total_ms, 4) + " ms"});
  t.add_row({"throughput", ConsoleTable::num(cells / est.total_ms / 1e6, 2) + " GCells/s"});
  t.add_row({"bound", est.bound});
  t.add_row({"occupancy", ConsoleTable::num(est.occupancy.fraction * 100, 0) + "% (" +
                              est.occupancy.limiter + "-limited)"});
  t.add_row({"blocks", std::to_string(stats.blocks_total) + " (" +
                           std::to_string(stats.blocks_timed) + " timed)"});
  t.add_row({"FP warp-ops", std::to_string(stats.totals.fp_ops)});
  t.add_row({"shuffles", std::to_string(stats.totals.shfl_ops)});
  t.add_row({"smem ops", std::to_string(stats.totals.smem_loads + stats.totals.smem_stores)});
  t.add_row({"DRAM traffic", ConsoleTable::num(
                                 static_cast<double>(stats.totals.dram_bytes()) / 1e6, 1) +
                                 " MB"});
  t.add_row({"functional check", verified ? "PASS (reduced domain)" : "FAIL"});
  std::cout << t.str();
}

int run_conv2d(const sim::ArchSpec& arch, Index n, int f) {
  std::cout << "SSAM conv2d " << f << "x" << f << " on " << n << "^2 (" << arch.name
            << ")\n";
  std::vector<float> w(static_cast<std::size_t>(f) * f);
  fill_random(w, 2, -0.5, 0.5);
  // Functional verification on a reduced domain.
  const Index vn = std::min<Index>(n, 384);
  Grid2D<float> vin(vn, vn), vgot(vn, vn), vwant(vn, vn);
  fill_random(vin, 3);
  core::conv2d_ssam<float>(arch, vin.cview(), w, f, f, vgot.view());
  ref::conv2d<float>(vin.cview(), w, f, f, vwant.view());
  const bool ok =
      normalized_max_diff<float>({vgot.data(), static_cast<std::size_t>(vgot.size())},
                                 {vwant.data(), static_cast<std::size_t>(vwant.size())}) <=
      verify_tolerance<float>(w.size());
  // Timing at the requested size.
  Grid2D<float> in(n, n), out(n, n);
  auto stats = core::conv2d_ssam<float>(arch, in.cview(), w, f, f, out.view(), {},
                                        sim::ExecMode::kTiming);
  report(arch, stats, static_cast<double>(n) * n, ok);
  return ok ? 0 : 1;
}

int run_stencil(const sim::ArchSpec& arch, Index n, const std::string& name) {
  const auto shape = core::suite_stencil<float>(name);
  std::cout << "SSAM stencil " << name << " on " << n << (shape.dims == 2 ? "^2" : "^3")
            << " (" << arch.name << ")\n";
  bool ok = false;
  sim::KernelStats stats;
  double cells = 0;
  if (shape.dims == 2) {
    const Index vn = std::min<Index>(n, 256);
    Grid2D<float> vin(vn, vn), vgot(vn, vn), vwant(vn, vn);
    fill_random(vin, 5);
    core::stencil2d_ssam<float>(arch, vin.cview(), shape, vgot.view());
    ref::stencil2d<float>(vin.cview(), shape.taps, vwant.view());
    ok = normalized_max_diff<float>({vgot.data(), static_cast<std::size_t>(vgot.size())},
                                    {vwant.data(), static_cast<std::size_t>(vwant.size())}) <=
         verify_tolerance<float>(shape.taps.size());
    Grid2D<float> in(n, n), out(n, n);
    stats = core::stencil2d_ssam<float>(arch, in.cview(), shape, out.view(), {},
                                        sim::ExecMode::kTiming);
    cells = static_cast<double>(n) * n;
  } else {
    const Index vn = std::min<Index>(n, 48);
    Grid3D<float> vin(vn, vn, vn), vgot(vn, vn, vn), vwant(vn, vn, vn);
    fill_random(vin, 5);
    core::stencil3d_ssam<float>(arch, vin.cview(), shape, vgot.view());
    ref::stencil3d<float>(vin.cview(), shape.taps, vwant.view());
    ok = normalized_max_diff<float>({vgot.data(), static_cast<std::size_t>(vgot.size())},
                                    {vwant.data(), static_cast<std::size_t>(vwant.size())}) <=
         verify_tolerance<float>(shape.taps.size());
    const Index n3 = std::min<Index>(n, 512);
    Grid3D<float> in(n3, n3, n3), out(n3, n3, n3);
    stats = core::stencil3d_ssam<float>(arch, in.cview(), shape, out.view(), {},
                                        sim::ExecMode::kTiming);
    cells = static_cast<double>(n3) * n3 * n3;
  }
  report(arch, stats, cells, ok);
  return ok ? 0 : 1;
}

int run_gemm(const sim::ArchSpec& arch, Index n) {
  std::cout << "SSAM gemm " << n << "^3 (" << arch.name << ")\n";
  const Index vn = std::min<Index>(n, 128);
  Grid2D<float> va(vn, vn), vb(vn, vn), vgot(vn, vn), vwant(vn, vn);
  fill_random(va, 7);
  fill_random(vb, 8);
  core::gemm_ssam<float>(arch, va.cview(), vb.cview(), vgot.view());
  core::gemm_reference<float>(va.cview(), vb.cview(), vwant.view());
  const bool ok =
      normalized_max_diff<float>({vgot.data(), static_cast<std::size_t>(vgot.size())},
                                 {vwant.data(), static_cast<std::size_t>(vwant.size())}) <=
      verify_tolerance<float>(static_cast<std::size_t>(vn));
  Grid2D<float> a(n, n), b(n, n), c(n, n);
  auto stats = core::gemm_ssam<float>(arch, a.cview(), b.cview(), c.view(), {},
                                      sim::ExecMode::kTiming);
  report(arch, stats, static_cast<double>(n) * n, ok);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssam;
  try {
    const std::string kernel = argc > 1 ? argv[1] : "demo";
    const std::string arch_name = argc > 2 ? argv[2] : "V100";
    const Index n = argc > 3 ? std::stoll(argv[3]) : 2048;
    const sim::ArchSpec& arch = sim::arch_by_name(arch_name);

    if (kernel == "conv2d") {
      return run_conv2d(arch, n, argc > 4 ? std::stoi(argv[4]) : 5);
    }
    if (kernel == "stencil") {
      return run_stencil(arch, n, argc > 4 ? argv[4] : "2d5pt");
    }
    if (kernel == "gemm") {
      return run_gemm(arch, n);
    }
    // Demo: one of each.
    int rc = run_conv2d(arch, 2048, 9);
    rc |= run_stencil(arch, 2048, "2d9pt");
    rc |= run_stencil(arch, 256, "3d7pt");
    rc |= run_gemm(arch, 512);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\nusage: ssam_explore "
              << "[conv2d|stencil|gemm|demo] [K40|M40|P100|V100] [size] [filter|name]\n";
    return 2;
  }
}
