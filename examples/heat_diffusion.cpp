// Heat diffusion: iterate the 2D 5-point Jacobi stencil (Section 2.2) with
// SSAM until near steady state, render the temperature field as ASCII, and
// check the physics (maximum principle: temperatures stay within initial
// bounds under a convex stencil).
//
// The 400 sweeps are submitted as one `SimJob` to the simulation service
// (core/server.hpp): the server schedules the job onto a device of its
// group, and the job runs on the persistent iteration engine
// (core/iterate_persistent.hpp) pinned to that device's pool slice — tiles
// stay resident on their workers for the whole run, halos move through
// lock-free zero-copy channels, no per-step launch. The result is
// bit-identical to the single-pool per-step relaunch driver, which the run
// double-checks here (the service invariant: same bits whichever door a
// computation enters through).
#include <cstring>
#include <iostream>

#include "common/grid.hpp"
#include "core/iterate.hpp"
#include "core/server.hpp"
#include "gpusim/device.hpp"
#include "gpusim/timing.hpp"

int main() {
  using namespace ssam;
  const Index n = 192;
  const int steps = 400;

  // The diffusion stencil of Section 2.2 with convex coefficients.
  core::StencilShape<float> diffusion;
  diffusion.name = "2d5pt-diffusion";
  diffusion.dims = 2;
  diffusion.order = 1;
  diffusion.taps = {{0, 0, 0, 0.60f},   // Current
                    {-1, 0, 0, 0.10f},  // West
                    {1, 0, 0, 0.10f},   // East
                    {0, -1, 0, 0.10f},  // North
                    {0, 1, 0, 0.10f}};  // South

  // Hot square in a cold plate.
  Grid2D<float> a(n, n, 0.0f), b(n, n);
  for (Index y = n / 3; y < 2 * n / 3; ++y) {
    for (Index x = n / 3; x < 2 * n / 3; ++x) a.at(x, y) = 1.0f;
  }
  Grid2D<float> ref_a = a, ref_b = b;

  core::SimServer server;
  std::cout << "service config: " << server.config().describe() << "\n";
  core::JobHints hints;
  hints.policy = core::IterationPolicy::kPersistent;
  core::JobFuture fut =
      server.submit(core::SimJob::stencil2d(a, b, diffusion, steps, hints));
  const core::JobResult& jr = fut.wait();
  std::cout << "persistent run on device " << jr.device << ": " << jr.run.tiles
            << " resident tiles, " << jr.run.sweeps << " sweeps, queued "
            << jr.queue_ms << " ms, ran " << jr.exec_ms << " ms\n";
  server.drain();  // completion accounting runs just after the future resolves
  {
    sim::Device& dev = server.group().device(jr.device);
    auto& c = dev.counters();
    std::cout << "  " << dev.name() << ": " << c.sweeps.load() << " band sweeps, "
              << c.jobs_completed.load() << " jobs completed\n";
  }

  // The service must match the per-step relaunch driver bit for bit.
  core::iterate_stencil2d<float>(sim::tesla_v100(), ref_a, ref_b, diffusion, steps);
  std::cout << (0 == std::memcmp(a.data(), ref_a.data(),
                                 static_cast<std::size_t>(a.size()) * sizeof(float))
                    ? "matches the per-step relaunch driver bit for bit\n"
                    : "MISMATCH vs the relaunch driver!\n");

  // Maximum principle: all temperatures within [0, 1].
  float lo = 1e9f, hi = -1e9f;
  for (Index i = 0; i < a.size(); ++i) {
    lo = std::min(lo, a.data()[i]);
    hi = std::max(hi, a.data()[i]);
  }
  std::cout << "after " << steps << " steps: min=" << lo << " max=" << hi
            << (lo >= -1e-5f && hi <= 1.0f + 1e-5f ? "  (maximum principle holds)\n"
                                                   : "  (VIOLATION!)\n");

  // ASCII rendering (24x48 downsample), normalized to the current peak.
  const char* shades = " .:-=+*#%@";
  const float norm = hi > 0 ? 1.0f / hi : 1.0f;
  for (int ty = 0; ty < 24; ++ty) {
    for (int tx = 0; tx < 48; ++tx) {
      const float v = a.at(tx * n / 48, ty * n / 24) * norm;
      const int s = std::max(0, std::min(9, static_cast<int>(v * 9.99f)));
      std::cout << shades[s];
    }
    std::cout << '\n';
  }

  // Per-step cost on both simulated GPUs.
  for (const sim::ArchSpec* arch : {&sim::tesla_p100(), &sim::tesla_v100()}) {
    auto it = core::iterate_stencil2d<float>(*arch, a, b, diffusion, 1, {},
                                             sim::ExecMode::kTiming);
    const auto est = sim::estimate_runtime(*arch, it.per_step);
    std::cout << arch->name << ": " << est.total_ms << " ms/step ("
              << static_cast<double>(n) * n / est.total_ms / 1e6 << " GCells/s)\n";
  }
  return 0;
}
